package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/htg"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/solstore"
)

// Approach selects the parallelization algorithm.
type Approach int

// Approaches.
const (
	// Heterogeneous is the paper's contribution: class-aware cost model and
	// integrated task-to-processor-class mapping.
	Heterogeneous Approach = iota
	// Homogeneous is the baseline of [Cordes et al., CODES+ISSS 2010]: a
	// single uniform cost model (the main core's), no mapping dimension.
	// Its tasks are placed round-robin on the physical cores at runtime.
	Homogeneous
)

// String names the approach.
func (a Approach) String() string {
	if a == Homogeneous {
		return "homogeneous"
	}
	return "heterogeneous"
}

// Config tunes the parallelizer.
type Config struct {
	// MaxItemsPerILP bounds region size via granularity clustering
	// (default 12).
	MaxItemsPerILP int
	// MaxCandsPerClass bounds each node's pruned candidate set (default 5).
	MaxCandsPerClass int
	// MaxTasksPerRegion caps the task bound each region ILP starts from
	// (0 = the platform's core count). ILP size — and simplex time —
	// grows steeply with the bound, so design-space sweeps over large
	// platforms set a small cap to trade a little plan optimality for
	// tractable solve times.
	MaxTasksPerRegion int
	// MaxILPNodes caps branch-and-bound nodes per ILP (default 30000).
	MaxILPNodes int
	// ILPTimeout caps wall time per ILP (default 3s).
	ILPTimeout time.Duration
	// ILPRelGap accepts incumbents within this relative optimality gap
	// (default 1%); tightening it trades compile time for solution quality.
	ILPRelGap float64
	// ILPWorkers widens the branch-and-bound best-first search: up to this
	// many node relaxations are solved concurrently per round, folded back
	// in deterministic frontier order (0 or 1 = serial). The search
	// trajectory depends on the width — equally-optimal plans may differ
	// between widths — so the field is part of the cache fingerprint; for
	// a fixed width results are bit-reproducible.
	ILPWorkers int
	// ILPSeed perturbs tie-breaking among equal-bound search nodes.
	// Deterministic for any fixed value (including the 0 default).
	ILPSeed int64
	// DisableChunking turns DOALL iteration splitting off (ablation).
	DisableChunking bool
	// EnablePipelining turns on the decoupled-software-pipelining extension
	// for recurrence loops (the paper's future-work direction; off by
	// default to reproduce the published tool).
	EnablePipelining bool
	// DisableHierarchy runs a single flat ILP over the root region only
	// (ablation; inner nodes keep sequential candidates only).
	DisableHierarchy bool
	// RegionWorkers bounds the worker pool solving a node's independent
	// region sweeps concurrently (0 or 1 = sequential). Results are
	// merged in deterministic unit order, so every output — solutions,
	// stats tables, reports — is byte-identical for any worker count.
	RegionWorkers int
	// Store, when non-nil, is the shared region-solve store: every
	// region ILP is looked up by its canonical fingerprint before
	// solving, and solved results (including proven "no improvement"
	// outcomes) are published for reuse across runs, scenarios and
	// design-space sweep points sharing the store.
	Store *solstore.Store
	// Tracer, when non-nil, receives one span per ILP solve (region,
	// model shape, solver outcome attributes).
	Tracer *obs.Tracer
	// Metrics, when non-nil, is fed solver telemetry via the branch-and-
	// bound progress hook: B&B nodes, LP iterations, incumbent updates,
	// gaps, timeout and node-cap hits, and solve durations.
	Metrics *obs.Registry
	// Events, when non-nil, receives structured telemetry events
	// (solver incumbents, region-store evictions, worker stalls) as
	// JSONL-ready records.
	Events *obs.EventLog
	// Audit, when non-nil, receives the finished Result before Parallelize
	// returns; a non-nil error fails the whole run with it. The analysis
	// package provides an auditor (analysis.AuditResult) that structurally
	// verifies every solution: conflicting-access ordering, cycle-freeness,
	// per-class core budgets and cost recomputation. Both public entry
	// points (heteropar.Parallelize and the DSE engine) install it by
	// default.
	Audit func(*Result) error
}

// Fingerprint returns a canonical string of every field that influences
// which solutions the parallelizer produces, with defaults applied, so
// two configs with equal fingerprints are interchangeable for caching.
// The observability sinks (Tracer, Metrics, Events) and the Audit hook are
// deliberately excluded: they never change which solutions are produced,
// only whether defective ones are reported. RegionWorkers and Store are
// excluded for the same reason — scheduling width and cache reuse are
// guaranteed not to change any output.
func (c Config) Fingerprint() string {
	d := c.withDefaults()
	return fmt.Sprintf("items:%d;cands:%d;tasks:%d;nodes:%d;timeout:%s;gap:%g;chunk:%t;pipe:%t;hier:%t;workers:%d;seed:%d",
		d.MaxItemsPerILP, d.MaxCandsPerClass, d.MaxTasksPerRegion, d.MaxILPNodes,
		d.ILPTimeout, d.ILPRelGap, !d.DisableChunking, d.EnablePipelining, !d.DisableHierarchy,
		d.ILPWorkers, d.ILPSeed)
}

func (c Config) withDefaults() Config {
	if c.MaxItemsPerILP == 0 {
		c.MaxItemsPerILP = 12
	}
	if c.MaxCandsPerClass == 0 {
		c.MaxCandsPerClass = 5
	}
	if c.MaxILPNodes == 0 {
		c.MaxILPNodes = 1500
	}
	if c.ILPTimeout == 0 {
		c.ILPTimeout = 400 * time.Millisecond
	}
	if c.ILPRelGap == 0 {
		c.ILPRelGap = 0.01
	}
	if c.ILPWorkers == 0 {
		c.ILPWorkers = 1
	}
	return c
}

// SolveRecord is the telemetry of one per-region ILP solve.
type SolveRecord struct {
	// Region names the HTG node whose child region was solved.
	Region string
	// Model is the ILP family: "tasks" (statement partitioning),
	// "chunks" (DOALL iteration splitting) or "pipeline" (stage
	// partitioning).
	Model string
	// Class is the main-task processor class of this solve; MaxTasks the
	// task-count bound of the sweep step.
	Class    int
	MaxTasks int
	// Vars and Cons are the model dimensions.
	Vars int
	Cons int
	// Status is the solver outcome (optimal, feasible, infeasible, ...).
	Status string
	// Nodes, LPIters and Incumbents are the branch-and-bound effort
	// counters; Gap the final relative optimality gap.
	Nodes      int
	LPIters    int
	Incumbents int
	Gap        float64
	// Cuts counts root cutting planes; WarmStarts the node relaxations
	// attempted from the parent basis and WarmHits those that succeeded
	// without a cold fallback.
	Cuts       int
	WarmStarts int
	WarmHits   int
	// TimedOut / NodeCapped mark truncated searches.
	TimedOut   bool
	NodeCapped bool
	// Time is the wall-clock solve duration.
	Time time.Duration
}

// Optimal reports whether the solve proved optimality.
func (r SolveRecord) Optimal() bool { return r.Status == "optimal" }

// Stats reports the solver effort: the aggregate quantities of Table I
// plus per-solve telemetry.
type Stats struct {
	NumILPs        int
	NumVars        int
	NumConstraints int
	SolveTime      time.Duration
	BBNodes        int
	// LPIters totals simplex iterations across all solves; Incumbents
	// the integral improvements found.
	LPIters    int
	Incumbents int
	// Cuts, WarmStarts and WarmHits aggregate the revised-simplex engine
	// counters across all solves.
	Cuts       int
	WarmStarts int
	WarmHits   int
	// Timeouts and NodeCapHits count truncated solves; ProvedOptimal the
	// solves that closed the gap completely. MaxGap is the worst final
	// relative optimality gap over all solves that found a solution.
	Timeouts      int
	NodeCapHits   int
	ProvedOptimal int
	MaxGap        float64
	// Solves lists every per-region ILP solve in execution order.
	Solves []SolveRecord
}

// record folds one solve into the aggregates.
func (s *Stats) record(rec SolveRecord) {
	s.NumILPs++
	s.NumVars += rec.Vars
	s.NumConstraints += rec.Cons
	s.SolveTime += rec.Time
	s.BBNodes += rec.Nodes
	s.LPIters += rec.LPIters
	s.Incumbents += rec.Incumbents
	s.Cuts += rec.Cuts
	s.WarmStarts += rec.WarmStarts
	s.WarmHits += rec.WarmHits
	if rec.TimedOut {
		s.Timeouts++
	}
	if rec.NodeCapped {
		s.NodeCapHits++
	}
	if rec.Optimal() {
		s.ProvedOptimal++
	}
	if rec.Gap > s.MaxGap {
		s.MaxGap = rec.Gap
	}
	s.Solves = append(s.Solves, rec)
}

// SolveTable renders the per-region solve records as an aligned
// human-readable table (the CLI's -stats view).
func (s *Stats) SolveTable() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %-8s %5s %5s %6s %6s %7s %9s %6s %7s %9s\n",
		"region", "model", "class", "tasks", "vars", "cons",
		"nodes", "lp-iters", "inc", "gap", "time")
	sb.WriteString(strings.Repeat("-", 98) + "\n")
	for _, r := range s.Solves {
		flags := ""
		if r.TimedOut {
			flags = "!t"
		}
		if r.NodeCapped {
			flags += "!n"
		}
		region := r.Region
		if len(region) > 22 {
			region = region[:19] + "..."
		}
		fmt.Fprintf(&sb, "%-22s %-8s %5d %5d %6d %6d %7d %9d %6d %6.2f%% %9s %s\n",
			region, r.Model, r.Class, r.MaxTasks, r.Vars, r.Cons,
			r.Nodes, r.LPIters, r.Incumbents, r.Gap*100,
			r.Time.Round(time.Microsecond), r.Status+flags)
	}
	sb.WriteString(strings.Repeat("-", 98) + "\n")
	fmt.Fprintf(&sb, "total: %d ILPs, %d B&B nodes, %d LP iterations, %d incumbents, %v solve time\n",
		s.NumILPs, s.BBNodes, s.LPIters, s.Incumbents, s.SolveTime.Round(time.Millisecond))
	fmt.Fprintf(&sb, "       %d proved optimal, %d timeouts, %d node-cap hits, worst gap %.2f%%\n",
		s.ProvedOptimal, s.Timeouts, s.NodeCapHits, s.MaxGap*100)
	warmPct := 0.0
	if s.WarmStarts > 0 {
		warmPct = 100 * float64(s.WarmHits) / float64(s.WarmStarts)
	}
	fmt.Fprintf(&sb, "       %d root cuts, %d/%d warm starts hit (%.1f%%)\n",
		s.Cuts, s.WarmHits, s.WarmStarts, warmPct)
	return sb.String()
}

// Result is the outcome of parallelizing one program.
type Result struct {
	// Best is the chosen solution for the root node with the main task on
	// the scenario's main class (never nil; sequential if no parallelism
	// is profitable).
	Best *Solution
	// Sets holds the full per-node parallel sets for inspection.
	Sets map[*htg.Node]*SolutionSet
	// Stats aggregates ILP statistics.
	Stats Stats
	// Approach and MainClass echo the request.
	Approach  Approach
	MainClass int
	// Platform is the platform the solution's class indices refer to: the
	// real platform for Heterogeneous, the uniform pseudo-platform for
	// Homogeneous.
	Platform *platform.Platform
}

// SequentialTimeNs returns the baseline: the whole program run
// sequentially on the main class.
func (r *Result) SequentialTimeNs(g *htg.Graph) float64 {
	return float64(g.Root.TotalCount) * g.Root.CostNanosOn(r.Platform.Classes[r.MainClass])
}

// EstimatedSpeedup is the cost-model speedup (simulation gives the
// measured one).
func (r *Result) EstimatedSpeedup(g *htg.Graph) float64 {
	if r.Best.TimeNs <= 0 {
		return 1
	}
	return r.SequentialTimeNs(g) / r.Best.TimeNs
}

// Parallelizer drives Algorithm 1 over one HTG.
type Parallelizer struct {
	pf    *platform.Platform
	cfg   Config
	store *solstore.Store
	// mu guards stats: region units run concurrently when RegionWorkers
	// exceeds one, and record accumulation must stay safe even though
	// determinism comes from the ordered unit merge, not the lock.
	mu    sync.Mutex
	stats Stats
}

// Parallelize runs the selected approach on graph g targeting pf with the
// main task on mainClass (an index into pf.Classes).
func Parallelize(g *htg.Graph, pf *platform.Platform, mainClass int, approach Approach, cfg Config) (*Result, error) {
	if err := pf.Validate(); err != nil {
		return nil, err
	}
	if mainClass < 0 || mainClass >= len(pf.Classes) {
		return nil, fmt.Errorf("core: main class %d out of range", mainClass)
	}
	workPF := pf
	workMain := mainClass
	if approach == Homogeneous {
		// The baseline believes every core performs like the main core.
		workPF = platform.Homogeneous(
			pf.Name+"-uniform", pf.Classes[mainClass].MHz, pf.NumCores())
		workPF.BusLatencyNs = pf.BusLatencyNs
		workPF.BusBytesPerNs = pf.BusBytesPerNs
		workPF.TaskCreateNs = pf.TaskCreateNs
		workMain = 0
	}
	p := &Parallelizer{pf: workPF, cfg: cfg.withDefaults(), store: cfg.Store}
	sets := map[*htg.Node]*SolutionSet{}
	p.parallelizeNode(g.Root, sets)
	set := sets[g.Root]
	best := set.Best(workMain)
	if best == nil {
		best = sequentialSolution(g.Root, workPF, workMain)
	}
	res := &Result{
		Best:      best,
		Sets:      sets,
		Approach:  approach,
		MainClass: workMain,
		Platform:  workPF,
		Stats:     p.stats,
	}
	if cfg.Audit != nil {
		if err := cfg.Audit(res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// parallelizeNode implements the PARALLELIZE function of Algorithm 1:
// recurse bottom-up, then extract parallelism for this node once all
// children carry their parallel sets.
func (p *Parallelizer) parallelizeNode(n *htg.Node, sets map[*htg.Node]*SolutionSet) {
	set := &SolutionSet{Node: n, ByClass: make([][]*Solution, len(p.pf.Classes))}
	// Line 7: sequential solutions, one per processor class.
	for c := range p.pf.Classes {
		set.ByClass[c] = append(set.ByClass[c], sequentialSolution(n, p.pf, c))
	}
	sets[n] = set
	if !n.IsHierarchical() {
		return // line 8-9
	}
	// Lines 11-12: children first.
	for _, child := range n.Children {
		p.parallelizeNode(child, sets)
	}
	if p.cfg.DisableHierarchy && n.Kind != htg.KindRoot {
		// Ablation: no parallelism below the root region.
		return
	}
	if n.TotalCount == 0 {
		return // never executed: nothing to gain
	}
	// Lines 14-21: per main class, sweep the task bound downward. Each
	// (region, class) sweep is one independent unit: the sweep chain is
	// sequential within itself (the next bound depends on the previous
	// solution's task count) but shares nothing with its siblings, so
	// units run concurrently on the RegionWorkers pool and merge back in
	// unit order — reproducing the sequential solve order exactly.
	regions := []*regionSpec{p.clusterRegion(p.statementRegion(n, sets), p.cfg.MaxItemsPerILP)}
	if !p.cfg.DisableChunking && n.Kind == htg.KindLoop && n.Loop != nil && n.Loop.Parallel {
		regions = append(regions, p.chunkRegion(n))
	}
	var units []*regionUnit
	for _, rs := range regions {
		for seqPC := range p.pf.Classes {
			rs, seqPC := rs, seqPC
			units = append(units, &regionUnit{seqPC: seqPC, run: func(sub *Parallelizer) []*Solution {
				var sols []*Solution
				i := sub.taskBound()
				for i > 1 {
					r := sub.solveRegion(rs, seqPC, i)
					if r == nil {
						break
					}
					sols = append(sols, r)
					next := r.NumTasks - 1
					if next >= i {
						next = i - 1
					}
					i = next
				}
				return sols
			}})
		}
	}
	// Future-work extension: pipeline the body of recurrence loops whose
	// carried dependences only flow forward.
	if p.cfg.EnablePipelining && n.Kind == htg.KindLoop &&
		(n.Loop == nil || !n.Loop.Parallel) && pipelinable(n) {
		iters := 0.0
		for _, c := range n.Children {
			if c.Count > iters {
				iters = c.Count
			}
		}
		rs := p.clusterRegion(p.statementRegion(n, sets), p.cfg.MaxItemsPerILP)
		// Pipelines are created once per loop entry, not per iteration.
		rs.spawnCount = float64(n.TotalCount)
		for seqPC := range p.pf.Classes {
			seqPC := seqPC
			units = append(units, &regionUnit{seqPC: seqPC, run: func(sub *Parallelizer) []*Solution {
				if r := sub.solvePipeline(rs, iters, seqPC, sub.taskBound()); r != nil {
					return []*Solution{r}
				}
				return nil
			}})
		}
	}
	p.runUnits(units)
	p.mergeUnits(set, units)
	set.prune(p.cfg.MaxCandsPerClass)
}

// taskBound returns the starting task bound for region solving: the
// platform's core count, clipped by the MaxTasksPerRegion budget.
func (p *Parallelizer) taskBound() int {
	n := p.pf.NumCores()
	if p.cfg.MaxTasksPerRegion > 0 && p.cfg.MaxTasksPerRegion < n {
		n = p.cfg.MaxTasksPerRegion
	}
	return n
}

// DebugILP toggles per-ILP solve tracing (tests only).
func DebugILP(on bool) { debugILP = on }
