package core

import (
	"strings"
	"testing"

	"repro/internal/htg"
	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/platform"
)

const statsSrc = `
#define N 128
float a[N]; float b[N]; float c[N];
void main(void) {
    for (int i = 0; i < N; i++) { a[i] = sqrt(i * 1.0 + 1.0); }
    for (int j = 0; j < N; j++) { b[j] = a[j] * 2.0 + 1.0; }
    for (int k = 0; k < N; k++) { c[k] = a[k] + b[k]; }
}
`

func statsGraph(t *testing.T) *htg.Graph {
	t.Helper()
	prog, err := minic.Compile(statsSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prof, err := interp.New(prog).Run()
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	g, err := htg.Build(prog, prof, htg.Config{})
	if err != nil {
		t.Fatalf("htg: %v", err)
	}
	return g
}

// TestSolveRecordsPopulated checks that every ILP solve leaves a
// per-region record whose aggregates match the Table I totals.
func TestSolveRecordsPopulated(t *testing.T) {
	g := statsGraph(t)
	pf := platform.ConfigA()
	res, err := Parallelize(g, pf, 0, Heterogeneous, Config{})
	if err != nil {
		t.Fatalf("Parallelize: %v", err)
	}
	st := res.Stats
	if st.NumILPs == 0 {
		t.Fatalf("no ILPs solved")
	}
	if len(st.Solves) != st.NumILPs {
		t.Fatalf("Solves has %d records, NumILPs = %d", len(st.Solves), st.NumILPs)
	}
	var nodes, lpIters, vars, cons, inc int
	for _, rec := range st.Solves {
		if rec.Region == "" || rec.Model == "" || rec.Status == "" {
			t.Errorf("incomplete record: %+v", rec)
		}
		if rec.MaxTasks < 2 {
			t.Errorf("record with task bound %d (< 2 never reaches the solver)", rec.MaxTasks)
		}
		nodes += rec.Nodes
		lpIters += rec.LPIters
		vars += rec.Vars
		cons += rec.Cons
		inc += rec.Incumbents
	}
	if nodes != st.BBNodes || lpIters != st.LPIters || vars != st.NumVars ||
		cons != st.NumConstraints || inc != st.Incumbents {
		t.Errorf("aggregates disagree with records: nodes %d/%d lp %d/%d vars %d/%d cons %d/%d inc %d/%d",
			nodes, st.BBNodes, lpIters, st.LPIters, vars, st.NumVars,
			cons, st.NumConstraints, inc, st.Incumbents)
	}
	table := st.SolveTable()
	for _, want := range []string{"region", "model", "lp-iters", "total:"} {
		if !strings.Contains(table, want) {
			t.Errorf("SolveTable missing %q:\n%s", want, table)
		}
	}
}

// TestObsWiredThroughSolves checks that a configured tracer/registry
// sees one span per ILP solve and consistent solver telemetry.
func TestObsWiredThroughSolves(t *testing.T) {
	g := statsGraph(t)
	pf := platform.ConfigA()
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	res, err := Parallelize(g, pf, 0, Heterogeneous, Config{Tracer: tr, Metrics: reg})
	if err != nil {
		t.Fatalf("Parallelize: %v", err)
	}
	if got := tr.NumSpans(); got != res.Stats.NumILPs {
		t.Errorf("spans = %d, want one per ILP (%d)", got, res.Stats.NumILPs)
	}
	if got := reg.Counter("ilp.solves").Value(); got != int64(res.Stats.NumILPs) {
		t.Errorf("ilp.solves counter = %d, want %d", got, res.Stats.NumILPs)
	}
	if got := reg.Counter("ilp.bb_nodes").Value(); got != int64(res.Stats.BBNodes) {
		t.Errorf("ilp.bb_nodes counter = %d, want %d", got, res.Stats.BBNodes)
	}
	if got := reg.Counter("ilp.lp_iters").Value(); got != int64(res.Stats.LPIters) {
		t.Errorf("ilp.lp_iters counter = %d, want %d", got, res.Stats.LPIters)
	}
	if got := reg.Counter("ilp.incumbents").Value(); got != int64(res.Stats.Incumbents) {
		t.Errorf("ilp.incumbents counter = %d, want %d", got, res.Stats.Incumbents)
	}
	if got := reg.Histogram("ilp.solve_time").Count(); got != int64(res.Stats.NumILPs) {
		t.Errorf("solve_time observations = %d, want %d", got, res.Stats.NumILPs)
	}
}
