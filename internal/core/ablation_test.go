package core

import (
	"testing"

	"repro/internal/platform"
)

// The ablation tests pin down that each design lever has measurable effect
// in the direction DESIGN.md claims. The root benchmarks quantify the same
// levers on the full evaluation workloads.

func TestAblationHierarchyMatters(t *testing.T) {
	pf := platform.ConfigA()
	g := buildGraph(t, hotLoopSrc)
	main := platform.ScenarioAccelerator.MainClass(pf)
	hier, err := Parallelize(g, pf, main, Heterogeneous, Config{})
	if err != nil {
		t.Fatalf("hier: %v", err)
	}
	flat, err := Parallelize(g, pf, main, Heterogeneous, Config{DisableHierarchy: true})
	if err != nil {
		t.Fatalf("flat: %v", err)
	}
	if hier.Best.TimeNs >= flat.Best.TimeNs {
		t.Errorf("hierarchical decomposition should win: hier=%.0f flat=%.0f",
			hier.Best.TimeNs, flat.Best.TimeNs)
	}
}

func TestAblationTimeoutDegradesGracefully(t *testing.T) {
	// Even with a brutally small solver budget, the tool must return a
	// valid (possibly sequential) solution, never an error.
	pf := platform.ConfigA()
	g := buildGraph(t, independentWorkSrc)
	main := platform.ScenarioAccelerator.MainClass(pf)
	res, err := Parallelize(g, pf, main, Heterogeneous, Config{MaxILPNodes: 1, ILPTimeout: 1})
	if err != nil {
		t.Fatalf("tiny budget: %v", err)
	}
	seq := res.SequentialTimeNs(g)
	if res.Best.TimeNs > seq*1.0001 {
		t.Errorf("degraded solution (%.0f) worse than sequential (%.0f)", res.Best.TimeNs, seq)
	}
}

func TestStatsAccumulateAcrossRuns(t *testing.T) {
	pf := platform.ConfigB()
	g := buildGraph(t, hotLoopSrc)
	res, err := Parallelize(g, pf, 0, Heterogeneous, Config{})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if res.Stats.NumILPs == 0 || res.Stats.NumVars == 0 || res.Stats.NumConstraints == 0 {
		t.Errorf("stats empty: %+v", res.Stats)
	}
	if res.Stats.SolveTime <= 0 {
		t.Errorf("solve time not recorded")
	}
}

// TestHierarchicalComplexityGrowsLinearly checks the paper's Section IV-L
// claim: thanks to the hierarchical decomposition, the number of generated
// ILPs grows linearly with the number of statements, not combinatorially.
func TestHierarchicalComplexityGrowsLinearly(t *testing.T) {
	if testing.Short() {
		t.Skip("solves many ILPs")
	}
	pf := platform.ConfigA()
	gen := func(k int) string {
		src := "float a[256];\nvoid main(void) {\n"
		for i := 0; i < k; i++ {
			src += "    for (int i = 0; i < 256; i++) { a[i] = a[i] + i * 0.5; }\n"
		}
		return src + "}\n"
	}
	count := func(k int) int {
		g := buildGraph(t, gen(k))
		res, err := Parallelize(g, pf, 0, Heterogeneous, Config{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		return res.Stats.NumILPs
	}
	n2 := count(2)
	n4 := count(4)
	n8 := count(8)
	t.Logf("ILPs for 2/4/8 loops: %d / %d / %d", n2, n4, n8)
	// Linear growth: doubling the statement count at most ~doubles the ILP
	// count (with a generous constant for per-level overhead).
	if n4 > 3*n2 || n8 > 3*n4 {
		t.Errorf("ILP count grows superlinearly: %d -> %d -> %d", n2, n4, n8)
	}
}
