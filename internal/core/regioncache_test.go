package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/solstore"
)

// determinismConfig keeps truncation deterministic: the node cap, never
// the wall clock, bounds searches (a wall-clock timeout could truncate
// differently between runs and break byte-identity).
func determinismConfig() Config {
	return Config{ILPTimeout: 120 * time.Second}
}

// canonicalize renders everything a run produces that the byte-identity
// guarantee covers: the chosen solution tree and the solve records with
// wall-clock durations normalized out (duration is the one quantity
// honestly allowed to differ between runs).
func canonicalize(res *Result) string {
	s := res.Best.Describe(res.Platform)
	stats := res.Stats
	stats.SolveTime = 0
	recs := append([]SolveRecord(nil), stats.Solves...)
	for i := range recs {
		recs[i].Time = 0
	}
	stats.Solves = recs
	return s + "\n" + fmt.Sprintf("%+v", stats)
}

// TestRegionWorkersByteIdentical is the acceptance criterion of the
// parallel scheduler: with RegionWorkers >= 4 (and a shared store in
// the mix), solutions and stats are byte-identical to the sequential
// run.
func TestRegionWorkersByteIdentical(t *testing.T) {
	pf := platform.ConfigA()
	srcs := []string{hotLoopSrc, independentWorkSrc}
	if testing.Short() {
		// Keep the race gate lean: one source still runs the 4-worker
		// scheduler against the sequential baseline.
		srcs = srcs[:1]
	}
	for _, src := range srcs {
		g := buildGraph(t, src)
		main := platform.ScenarioAccelerator.MainClass(pf)

		seqCfg := determinismConfig()
		seqRes, err := Parallelize(g, pf, main, Heterogeneous, seqCfg)
		if err != nil {
			t.Fatalf("sequential: %v", err)
		}

		parCfg := determinismConfig()
		parCfg.RegionWorkers = 4
		parCfg.Store = solstore.New(solstore.Options{})
		parRes, err := Parallelize(g, pf, main, Heterogeneous, parCfg)
		if err != nil {
			t.Fatalf("parallel: %v", err)
		}

		if got, want := canonicalize(parRes), canonicalize(seqRes); got != want {
			t.Errorf("parallel run diverged from sequential run:\n--- sequential ---\n%s\n--- parallel ---\n%s", want, got)
		}
	}
}

// TestStoreWarmRunIdentical checks a warm run (everything served from
// the store) returns byte-identical results and actually hits.
func TestStoreWarmRunIdentical(t *testing.T) {
	pf := platform.ConfigA()
	g := buildGraph(t, hotLoopSrc)
	main := platform.ScenarioAccelerator.MainClass(pf)

	cfg := determinismConfig()
	cfg.Store = solstore.New(solstore.Options{})
	cold, err := Parallelize(g, pf, main, Heterogeneous, cfg)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	afterCold := cfg.Store.Stats()
	if afterCold.Misses == 0 {
		t.Fatalf("cold run recorded no store misses; store not consulted")
	}

	warm, err := Parallelize(g, pf, main, Heterogeneous, cfg)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	afterWarm := cfg.Store.Stats()
	if afterWarm.Misses != afterCold.Misses {
		t.Errorf("warm run re-solved %d regions; want 0 new misses",
			afterWarm.Misses-afterCold.Misses)
	}
	if afterWarm.Hits <= afterCold.Hits {
		t.Errorf("warm run recorded no store hits")
	}
	if got, want := canonicalize(warm), canonicalize(cold); got != want {
		t.Errorf("warm run diverged from cold run:\n--- cold ---\n%s\n--- warm ---\n%s", want, got)
	}
}

// TestStoreCrossScenarioReuse checks the key design point that makes
// the store pay off across a figure's scenario pair: parallelizeNode
// solves every region for every main class regardless of the requested
// scenario, so a second scenario on the same platform re-solves
// nothing.
func TestStoreCrossScenarioReuse(t *testing.T) {
	pf := platform.ConfigA()
	g := buildGraph(t, hotLoopSrc)
	cfg := determinismConfig()
	cfg.Store = solstore.New(solstore.Options{})

	if _, err := Parallelize(g, pf, platform.ScenarioAccelerator.MainClass(pf), Heterogeneous, cfg); err != nil {
		t.Fatalf("scenario I: %v", err)
	}
	afterFirst := cfg.Store.Stats()

	if _, err := Parallelize(g, pf, platform.ScenarioSlowerCores.MainClass(pf), Heterogeneous, cfg); err != nil {
		t.Fatalf("scenario II: %v", err)
	}
	afterSecond := cfg.Store.Stats()
	if afterSecond.Misses != afterFirst.Misses {
		t.Errorf("second scenario solved %d new regions; want full reuse",
			afterSecond.Misses-afterFirst.Misses)
	}
	if afterSecond.Hits <= afterFirst.Hits {
		t.Errorf("second scenario recorded no store hits")
	}
}

// TestStoreStatsIndependentOfWarmth checks replayed records keep Stats
// (NumILPs and friends — quantities that appear in reports) equal to a
// fresh solve's.
func TestStoreStatsIndependentOfWarmth(t *testing.T) {
	if testing.Short() {
		t.Skip("three full solves with no concurrency; skipped in -short mode")
	}
	pf := platform.ConfigB()
	g := buildGraph(t, independentWorkSrc)
	main := platform.ScenarioAccelerator.MainClass(pf)

	noStore, err := Parallelize(g, pf, main, Heterogeneous, determinismConfig())
	if err != nil {
		t.Fatalf("no store: %v", err)
	}
	cfg := determinismConfig()
	cfg.Store = solstore.New(solstore.Options{})
	if _, err := Parallelize(g, pf, main, Heterogeneous, cfg); err != nil {
		t.Fatalf("cold: %v", err)
	}
	warm, err := Parallelize(g, pf, main, Heterogeneous, cfg)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if warm.Stats.NumILPs != noStore.Stats.NumILPs {
		t.Errorf("warm NumILPs = %d, want %d (stats must not depend on cache warmth)",
			warm.Stats.NumILPs, noStore.Stats.NumILPs)
	}
	if warm.Stats.BBNodes != noStore.Stats.BBNodes {
		t.Errorf("warm BBNodes = %d, want %d", warm.Stats.BBNodes, noStore.Stats.BBNodes)
	}
	if len(warm.Stats.Solves) != len(noStore.Stats.Solves) {
		t.Fatalf("warm solve count = %d, want %d", len(warm.Stats.Solves), len(noStore.Stats.Solves))
	}
	for i := range warm.Stats.Solves {
		a, b := warm.Stats.Solves[i], noStore.Stats.Solves[i]
		a.Time, b.Time = 0, 0
		if a != b {
			t.Errorf("solve %d differs:\nwarm: %+v\nfresh: %+v", i, a, b)
		}
	}
}
