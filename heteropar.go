// Package heteropar is an automatic parallelizer for heterogeneous MPSoCs:
// a from-scratch reproduction of Cordes, Neugebauer, Engel and Marwedel,
// "Automatic Extraction of Task-Level Parallelism for Heterogeneous
// MPSoCs", ICPP 2013.
//
// The library takes a sequential program written in an ANSI-C subset and a
// heterogeneous platform description (processor classes with different
// clock speeds), profiles the program, builds an Augmented Hierarchical
// Task Graph, and extracts task-level parallelism with Integer Linear
// Programming models that simultaneously partition statements into tasks
// and pre-map tasks onto processor classes. The resulting plan can be
// inspected, rendered as an annotated source / parallel specification, and
// measured on the bundled event-driven MPSoC simulator.
//
// Quick start:
//
//	rep, err := heteropar.Parallelize(src, heteropar.Options{
//		Platform: heteropar.PlatformA(),
//		Scenario: heteropar.Accelerator,
//	})
//	if err != nil { ... }
//	fmt.Printf("speedup %.2fx\n", rep.MeasuredSpeedup)
//	fmt.Println(rep.AnnotatedSource())
package heteropar

import (
	"fmt"
	"io"
	"time"

	"repro/internal/analysis"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/htg"
	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/mpsoc"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/solstore"
	"repro/internal/taskspec"
)

// Observer re-exports the observability bundle (tracer + metrics); see
// package repro/internal/obs. A nil observer disables all
// instrumentation at the cost of one pointer test per phase.
type Observer = obs.Observer

// NewObserver builds a fully enabled observer (tracing and metrics).
func NewObserver() *Observer {
	return &Observer{Tracer: obs.NewTracer(), Metrics: obs.NewRegistry()}
}

// EventLog re-exports the structured JSONL telemetry event log (span
// open/close, solver incumbents, store evictions, worker stalls); see
// package repro/internal/obs. A nil log disables event emission.
type EventLog = obs.EventLog

// NewEventLog builds an event log retaining a bounded in-memory ring
// of recent events; w (which may be nil) additionally receives every
// event as one JSON line.
func NewEventLog(w io.Writer) *EventLog {
	return obs.NewEventLog(w)
}

// SolutionStore re-exports the sharded, size-bounded region-solve
// store (see package repro/internal/solstore): a content-addressed LRU
// cache of per-region ILP outcomes, safe for concurrent use and
// shareable across Parallelize calls so repeated or related programs
// skip identical region solves. Reuse is guaranteed output-neutral —
// keys cover every solver-visible input — so results stay
// byte-identical to a store-less run.
type SolutionStore = solstore.Store

// NewSolutionStore builds a region-solve store holding up to capacity
// entries (a default capacity applies when non-positive). Pass it via
// Options.Store, sharing one store across calls for cross-run reuse.
func NewSolutionStore(capacity int) *SolutionStore {
	return solstore.New(solstore.Options{Capacity: capacity})
}

// Platform re-exports the platform description type.
type Platform = platform.Platform

// ProcClass re-exports the processor class type.
type ProcClass = platform.ProcClass

// Scenario selects which processor class hosts the main (sequential) task.
type Scenario = platform.Scenario

// Scenario values: Accelerator puts the main task on the slowest class
// (scenario I of the paper), SlowerCores on the fastest (scenario II).
const (
	Accelerator = platform.ScenarioAccelerator
	SlowerCores = platform.ScenarioSlowerCores
)

// Approach selects the parallelization algorithm.
type Approach = core.Approach

// Approach values: Heterogeneous is the paper's contribution; Homogeneous
// is the uniform-cost baseline it is compared against.
const (
	Heterogeneous = core.Heterogeneous
	Homogeneous   = core.Homogeneous
)

// PlatformA returns evaluation configuration (A): ARM cores at
// 100/250/500/500 MHz.
func PlatformA() *Platform { return platform.ConfigA() }

// PlatformB returns evaluation configuration (B): ARM cores at
// 200/200/500/500 MHz (big.LITTLE-like).
func PlatformB() *Platform { return platform.ConfigB() }

// NewPlatform builds a custom platform from processor classes, using the
// library's default bus and task-creation overheads.
func NewPlatform(name string, classes ...ProcClass) *Platform {
	base := platform.ConfigA()
	return &Platform{
		Name:          name,
		Classes:       classes,
		BusLatencyNs:  base.BusLatencyNs,
		BusBytesPerNs: base.BusBytesPerNs,
		TaskCreateNs:  base.TaskCreateNs,
	}
}

// Options configures Parallelize.
type Options struct {
	// Platform is the target MPSoC (PlatformA() when nil).
	Platform *Platform
	// Scenario picks the main processor class (Accelerator by default).
	Scenario Scenario
	// Approach picks the algorithm (Heterogeneous by default).
	Approach Approach
	// MaxILPTime caps the solver time per ILP (optional).
	MaxILPTime time.Duration
	// DisableChunking turns DOALL iteration splitting off (ablation).
	DisableChunking bool
	// EnablePipelining turns on the software-pipelining extension for
	// recurrence loops (beyond the published tool; see DESIGN.md).
	EnablePipelining bool
	// SkipSimulation omits the MPSoC measurement (faster; the report's
	// Measured* fields stay zero).
	SkipSimulation bool
	// RegionWorkers bounds how many independent regions of one HTG
	// level are solved concurrently (sequential when <= 1). Any value
	// produces byte-identical output: results merge in deterministic
	// region order.
	RegionWorkers int
	// Store, when non-nil, caches region ILP solves by content address
	// so repeated or related Parallelize calls (e.g. the same program
	// on both scenarios of a platform) skip identical solves. See
	// NewSolutionStore.
	Store *SolutionStore
	// Observer, when non-nil, records phase spans, per-solve solver
	// telemetry and simulator occupancy for the -trace/-stats tooling.
	Observer *Observer
	// Metrics, when non-nil, receives solver/cache/pool metric families
	// without requiring a full Observer; ignored when Observer already
	// carries a registry.
	Metrics *obs.Registry
	// EventLog, when non-nil, receives structured telemetry events
	// (span open/close, solver incumbents, store evictions, worker
	// stalls); ignored when Observer already carries an event log.
	EventLog *EventLog
	// SkipAudit disables the static race-and-budget audit that otherwise
	// checks every produced solution against the dependence sets, the
	// platform core budgets and the cost model (see internal/analysis).
	SkipAudit bool
}

// Report is the result of parallelizing one program.
type Report struct {
	// Program is the checked AST.
	Program *minic.Program
	// Graph is the Augmented Hierarchical Task Graph.
	Graph *htg.Graph
	// Result holds the chosen solution, the per-node parallel sets and
	// the ILP statistics.
	Result *core.Result
	// Spec is the flattened parallel + pre-mapping specification.
	Spec *taskspec.Spec

	// EstimatedSpeedup is the parallelizer's cost-model prediction.
	EstimatedSpeedup float64
	// MeasuredSpeedup and MeasuredMakespanNs come from the MPSoC
	// simulator (zero when SkipSimulation was set).
	MeasuredSpeedup    float64
	MeasuredMakespanNs float64
	// SequentialNs is the baseline: sequential execution on the main core.
	SequentialNs float64
	// MeasuredEnergyUJ is the simulated energy of the parallel execution;
	// SequentialEnergyUJ the baseline's (main core active, others idling).
	MeasuredEnergyUJ   float64
	SequentialEnergyUJ float64
	// MainClass is the resolved main processor class index.
	MainClass int
	// Measured is the raw simulator result (trace, utilization, energy);
	// nil when SkipSimulation was set.
	Measured *mpsoc.Result

	opts Options
}

// Parallelize runs the complete tool flow on source. When an Observer
// is configured, each pipeline phase (compile, profile, HTG build,
// parallelize with its per-region ILP solves, taskspec, simulate) is
// wrapped in a tracing span, solver telemetry flows into the metrics
// registry, and the simulated schedule is exported as per-core
// occupancy tracks.
func Parallelize(source string, opts Options) (*Report, error) {
	if opts.Platform == nil {
		opts.Platform = PlatformA()
	}
	if err := opts.Platform.Validate(); err != nil {
		return nil, err
	}
	tr := opts.Observer.T()
	// Resolve the effective telemetry sinks: an Observer's own registry
	// and event log win; the standalone Options fields cover callers
	// that only want metrics or events without tracing.
	metrics := opts.Observer.M()
	if metrics == nil {
		metrics = opts.Metrics
	}
	events := opts.Observer.E()
	if events == nil {
		events = opts.EventLog
	}
	if events != nil {
		tr.SetEvents(events)
	}
	flow := tr.Start("parallelize-flow",
		obs.String("platform", opts.Platform.Name),
		obs.String("approach", opts.Approach.String()))
	defer flow.End()

	span := tr.Start("compile", obs.Int("source_bytes", len(source)))
	prog, err := minic.Compile(source)
	span.End()
	if err != nil {
		return nil, fmt.Errorf("heteropar: %w", err)
	}
	span = tr.Start("profile")
	in := interp.New(prog)
	prof, err := in.Run()
	span.End()
	if err != nil {
		return nil, fmt.Errorf("heteropar: profiling failed: %w", err)
	}
	span = tr.Start("htg-build")
	g, err := htg.Build(prog, prof, htg.Config{})
	if err != nil {
		span.End()
		return nil, fmt.Errorf("heteropar: %w", err)
	}
	span.End()
	mainClass := opts.Scenario.MainClass(opts.Platform)
	cfg := core.Config{
		ILPTimeout:       opts.MaxILPTime,
		DisableChunking:  opts.DisableChunking,
		EnablePipelining: opts.EnablePipelining,
		RegionWorkers:    opts.RegionWorkers,
		Store:            opts.Store,
		Tracer:           tr,
		Metrics:          metrics,
		Events:           events,
	}
	if !opts.SkipAudit {
		cfg.Audit = analysis.AuditResult
	}
	span = tr.Start("parallelize", obs.Int("main_class", mainClass))
	res, err := core.Parallelize(g, opts.Platform, mainClass, opts.Approach, cfg)
	if err != nil {
		span.End()
		return nil, fmt.Errorf("heteropar: %w", err)
	}
	span.SetAttr(
		obs.Int("ilps", res.Stats.NumILPs),
		obs.Int("bb_nodes", res.Stats.BBNodes),
		obs.Dur("solve_time", res.Stats.SolveTime))
	span.End()
	span = tr.Start("taskspec")
	spec := taskspec.Build(res.Best, res.Platform)
	span.End()
	rep := &Report{
		Program:          prog,
		Graph:            g,
		Result:           res,
		Spec:             spec,
		EstimatedSpeedup: res.EstimatedSpeedup(g),
		MainClass:        mainClass,
		opts:             opts,
	}
	if !opts.SkipSimulation {
		span = tr.Start("simulate")
		sim := mpsoc.New(opts.Platform, opts.Approach == Homogeneous)
		meas, err := sim.Run(res.Best, mainClass)
		if err != nil {
			span.End()
			return nil, fmt.Errorf("heteropar: simulation failed: %w", err)
		}
		rep.SequentialNs = sim.SequentialBaseline(g, mainClass)
		rep.MeasuredMakespanNs = meas.MakespanNs
		rep.MeasuredSpeedup = mpsoc.Speedup(rep.SequentialNs, meas.MakespanNs)
		rep.MeasuredEnergyUJ = meas.EnergyUJ
		rep.SequentialEnergyUJ = sim.SequentialEnergyUJ(g, mainClass)
		rep.Measured = meas
		span.SetAttr(
			obs.Float("makespan_ns", meas.MakespanNs),
			obs.Float("speedup", rep.MeasuredSpeedup))
		span.End()
		meas.ExportOccupancy(tr, opts.Platform)
	}
	return rep, nil
}

// AnnotatedSource renders the program with OpenMP-style task annotations.
func (r *Report) AnnotatedSource() string {
	return r.Spec.AnnotateSource(r.Program)
}

// ParallelSpec renders the parallel + pre-mapping specification.
func (r *Report) ParallelSpec() string { return r.Spec.Render() }

// PlanSummary renders the hierarchical task plan.
func (r *Report) PlanSummary() string {
	return r.Result.Best.Describe(r.Result.Platform)
}

// NumTasks returns the number of tasks in the flattened specification.
func (r *Report) NumTasks() int { return r.Spec.NumTasks() }

// TheoreticalLimit returns the platform's maximum speedup for the chosen
// scenario (the dashed line of the paper's figures).
func (r *Report) TheoreticalLimit() float64 {
	return r.opts.Platform.TheoreticalSpeedup(r.MainClass)
}

// SolverStatsTable renders the per-region ILP solve records (region,
// model, problem size, branch-and-bound effort, gap, status) as an
// aligned text table. Empty when no ILPs were solved.
func (r *Report) SolverStatsTable() string {
	return r.Result.Stats.SolveTable()
}

// Gantt renders the simulated execution as an ASCII timeline (empty when
// the simulation was skipped). Non-positive widths fall back to 96
// columns instead of producing a degenerate chart.
func (r *Report) Gantt(width int) string {
	if r.Measured == nil {
		return ""
	}
	if width <= 0 {
		width = 96
	}
	return mpsoc.RenderGantt(r.opts.Platform, r.Measured, width)
}

// GenerateGo emits a runnable parallel Go implementation of the chosen
// plan (goroutines + channel synchronization); the equivalent of the
// paper's source-to-source implementation step.
func (r *Report) GenerateGo() (string, error) {
	return codegen.Parallel(r.Program, r.Result.Best)
}

// GenerateSequentialGo emits the sequential Go reference translation.
func (r *Report) GenerateSequentialGo() (string, error) {
	return codegen.Sequential(r.Program)
}
