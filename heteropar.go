// Package heteropar is an automatic parallelizer for heterogeneous MPSoCs:
// a from-scratch reproduction of Cordes, Neugebauer, Engel and Marwedel,
// "Automatic Extraction of Task-Level Parallelism for Heterogeneous
// MPSoCs", ICPP 2013.
//
// The library takes a sequential program written in an ANSI-C subset and a
// heterogeneous platform description (processor classes with different
// clock speeds), profiles the program, builds an Augmented Hierarchical
// Task Graph, and extracts task-level parallelism with Integer Linear
// Programming models that simultaneously partition statements into tasks
// and pre-map tasks onto processor classes. The resulting plan can be
// inspected, rendered as an annotated source / parallel specification, and
// measured on the bundled event-driven MPSoC simulator.
//
// Quick start:
//
//	rep, err := heteropar.Parallelize(src, heteropar.Options{
//		Platform: heteropar.PlatformA(),
//		Scenario: heteropar.Accelerator,
//	})
//	if err != nil { ... }
//	fmt.Printf("speedup %.2fx\n", rep.MeasuredSpeedup)
//	fmt.Println(rep.AnnotatedSource())
package heteropar

import (
	"fmt"
	"time"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/htg"
	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/mpsoc"
	"repro/internal/platform"
	"repro/internal/taskspec"
)

// Platform re-exports the platform description type.
type Platform = platform.Platform

// ProcClass re-exports the processor class type.
type ProcClass = platform.ProcClass

// Scenario selects which processor class hosts the main (sequential) task.
type Scenario = platform.Scenario

// Scenario values: Accelerator puts the main task on the slowest class
// (scenario I of the paper), SlowerCores on the fastest (scenario II).
const (
	Accelerator = platform.ScenarioAccelerator
	SlowerCores = platform.ScenarioSlowerCores
)

// Approach selects the parallelization algorithm.
type Approach = core.Approach

// Approach values: Heterogeneous is the paper's contribution; Homogeneous
// is the uniform-cost baseline it is compared against.
const (
	Heterogeneous = core.Heterogeneous
	Homogeneous   = core.Homogeneous
)

// PlatformA returns evaluation configuration (A): ARM cores at
// 100/250/500/500 MHz.
func PlatformA() *Platform { return platform.ConfigA() }

// PlatformB returns evaluation configuration (B): ARM cores at
// 200/200/500/500 MHz (big.LITTLE-like).
func PlatformB() *Platform { return platform.ConfigB() }

// NewPlatform builds a custom platform from processor classes, using the
// library's default bus and task-creation overheads.
func NewPlatform(name string, classes ...ProcClass) *Platform {
	base := platform.ConfigA()
	return &Platform{
		Name:          name,
		Classes:       classes,
		BusLatencyNs:  base.BusLatencyNs,
		BusBytesPerNs: base.BusBytesPerNs,
		TaskCreateNs:  base.TaskCreateNs,
	}
}

// Options configures Parallelize.
type Options struct {
	// Platform is the target MPSoC (PlatformA() when nil).
	Platform *Platform
	// Scenario picks the main processor class (Accelerator by default).
	Scenario Scenario
	// Approach picks the algorithm (Heterogeneous by default).
	Approach Approach
	// MaxILPTime caps the solver time per ILP (optional).
	MaxILPTime time.Duration
	// DisableChunking turns DOALL iteration splitting off (ablation).
	DisableChunking bool
	// EnablePipelining turns on the software-pipelining extension for
	// recurrence loops (beyond the published tool; see DESIGN.md).
	EnablePipelining bool
	// SkipSimulation omits the MPSoC measurement (faster; the report's
	// Measured* fields stay zero).
	SkipSimulation bool
}

// Report is the result of parallelizing one program.
type Report struct {
	// Program is the checked AST.
	Program *minic.Program
	// Graph is the Augmented Hierarchical Task Graph.
	Graph *htg.Graph
	// Result holds the chosen solution, the per-node parallel sets and
	// the ILP statistics.
	Result *core.Result
	// Spec is the flattened parallel + pre-mapping specification.
	Spec *taskspec.Spec

	// EstimatedSpeedup is the parallelizer's cost-model prediction.
	EstimatedSpeedup float64
	// MeasuredSpeedup and MeasuredMakespanNs come from the MPSoC
	// simulator (zero when SkipSimulation was set).
	MeasuredSpeedup    float64
	MeasuredMakespanNs float64
	// SequentialNs is the baseline: sequential execution on the main core.
	SequentialNs float64
	// MeasuredEnergyUJ is the simulated energy of the parallel execution;
	// SequentialEnergyUJ the baseline's (main core active, others idling).
	MeasuredEnergyUJ   float64
	SequentialEnergyUJ float64
	// MainClass is the resolved main processor class index.
	MainClass int
	// Measured is the raw simulator result (trace, utilization, energy);
	// nil when SkipSimulation was set.
	Measured *mpsoc.Result

	opts Options
}

// Parallelize runs the complete tool flow on source.
func Parallelize(source string, opts Options) (*Report, error) {
	if opts.Platform == nil {
		opts.Platform = PlatformA()
	}
	if err := opts.Platform.Validate(); err != nil {
		return nil, err
	}
	prog, err := minic.Compile(source)
	if err != nil {
		return nil, fmt.Errorf("heteropar: %w", err)
	}
	in := interp.New(prog)
	prof, err := in.Run()
	if err != nil {
		return nil, fmt.Errorf("heteropar: profiling failed: %w", err)
	}
	g, err := htg.Build(prog, prof, htg.Config{})
	if err != nil {
		return nil, fmt.Errorf("heteropar: %w", err)
	}
	mainClass := opts.Scenario.MainClass(opts.Platform)
	cfg := core.Config{
		ILPTimeout:       opts.MaxILPTime,
		DisableChunking:  opts.DisableChunking,
		EnablePipelining: opts.EnablePipelining,
	}
	res, err := core.Parallelize(g, opts.Platform, mainClass, opts.Approach, cfg)
	if err != nil {
		return nil, fmt.Errorf("heteropar: %w", err)
	}
	rep := &Report{
		Program:          prog,
		Graph:            g,
		Result:           res,
		Spec:             taskspec.Build(res.Best, res.Platform),
		EstimatedSpeedup: res.EstimatedSpeedup(g),
		MainClass:        mainClass,
		opts:             opts,
	}
	if !opts.SkipSimulation {
		sim := mpsoc.New(opts.Platform, opts.Approach == Homogeneous)
		meas, err := sim.Run(res.Best, mainClass)
		if err != nil {
			return nil, fmt.Errorf("heteropar: simulation failed: %w", err)
		}
		rep.SequentialNs = sim.SequentialBaseline(g, mainClass)
		rep.MeasuredMakespanNs = meas.MakespanNs
		rep.MeasuredSpeedup = mpsoc.Speedup(rep.SequentialNs, meas.MakespanNs)
		rep.MeasuredEnergyUJ = meas.EnergyUJ
		rep.SequentialEnergyUJ = sim.SequentialEnergyUJ(g, mainClass)
		rep.Measured = meas
	}
	return rep, nil
}

// AnnotatedSource renders the program with OpenMP-style task annotations.
func (r *Report) AnnotatedSource() string {
	return r.Spec.AnnotateSource(r.Program)
}

// ParallelSpec renders the parallel + pre-mapping specification.
func (r *Report) ParallelSpec() string { return r.Spec.Render() }

// PlanSummary renders the hierarchical task plan.
func (r *Report) PlanSummary() string {
	return r.Result.Best.Describe(r.Result.Platform)
}

// NumTasks returns the number of tasks in the flattened specification.
func (r *Report) NumTasks() int { return r.Spec.NumTasks() }

// TheoreticalLimit returns the platform's maximum speedup for the chosen
// scenario (the dashed line of the paper's figures).
func (r *Report) TheoreticalLimit() float64 {
	return r.opts.Platform.TheoreticalSpeedup(r.MainClass)
}

// Gantt renders the simulated execution as an ASCII timeline (empty when
// the simulation was skipped).
func (r *Report) Gantt(width int) string {
	if r.Measured == nil {
		return ""
	}
	return mpsoc.RenderGantt(r.opts.Platform, r.Measured, width)
}

// GenerateGo emits a runnable parallel Go implementation of the chosen
// plan (goroutines + channel synchronization); the equivalent of the
// paper's source-to-source implementation step.
func (r *Report) GenerateGo() (string, error) {
	return codegen.Parallel(r.Program, r.Result.Best)
}

// GenerateSequentialGo emits the sequential Go reference translation.
func (r *Report) GenerateSequentialGo() (string, error) {
	return codegen.Sequential(r.Program)
}
