// Command heteropar parallelizes a sequential mini-C program for a
// heterogeneous MPSoC and reports the extracted tasks, the pre-mapping and
// the simulated speedup.
//
// Usage:
//
//	heteropar [flags] file.c
//	heteropar [flags] -bench mult_10
//
// Flags:
//
//	-platform A|B|file.json  target platform configuration (default A)
//	-scenario acc|slow main core selection (default acc)
//	-approach het|hom  algorithm (default het)
//	-annotate          print the annotated source
//	-spec              print the parallel specification
//	-plan              print the hierarchical task plan
//	-bench name        use a bundled benchmark instead of a file
//	-json              print the canonical machine-readable result document
//	-trace out.json    write a Chrome trace_event file of the run
//	-stats             print per-region solver statistics and metrics
//	-lint              run the static diagnostics and exit
//	-verify            report the race-and-budget audit of every solution
//	-region-workers N  solve independent regions on N workers
//	-store-cap N       cache region solves in an N-entry store
//	-metrics-addr a    serve live /metrics, /healthz and /debug/pprof/ on a
//	-events f.jsonl    stream structured telemetry events to a JSONL file
//	-v                 log spans to stderr as they complete
//
// Telemetry is strictly out-of-band: -metrics-addr and -events never
// change which solutions are produced, only what is observable while
// they are produced. All human-readable telemetry (-stats tables, -v
// span lines) shares one serialized stderr writer; stdout carries only
// program results.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	heteropar "repro"
	"repro/internal/analysis"
	"repro/internal/bench"
	"repro/internal/clitelemetry"
	"repro/internal/minic"
	"repro/internal/platform"
	"repro/internal/serve"
	"repro/internal/solstore"
)

func main() {
	var (
		platformFlag = flag.String("platform", "A", "platform configuration: A (100/250/500/500 MHz), B (200/200/500/500 MHz) or a path to a .json platform description")
		scenarioFlag = flag.String("scenario", "acc", "scenario: acc (slow main core) or slow (fast main core)")
		approachFlag = flag.String("approach", "het", "approach: het (heterogeneous) or hom (homogeneous baseline)")
		annotate     = flag.Bool("annotate", false, "print the annotated source")
		spec         = flag.Bool("spec", false, "print the parallel specification")
		plan         = flag.Bool("plan", false, "print the hierarchical task plan")
		gantt        = flag.Bool("gantt", false, "print an ASCII Gantt chart of the simulated execution")
		emitGo       = flag.String("emit-go", "", "write a runnable parallel Go implementation to this file")
		benchFlag    = flag.String("bench", "", "use a bundled benchmark (see -list)")
		jsonFlag     = flag.Bool("json", false, "print the canonical machine-readable result document instead of the summary block (byte-identical to the heteropard daemon's response for the same inputs)")
		list         = flag.Bool("list", false, "list bundled benchmarks")
		traceFlag    = flag.String("trace", "", "write a Chrome trace_event JSON file (open in chrome://tracing or Perfetto)")
		statsFlag    = flag.Bool("stats", false, "print per-region ILP solver statistics and the metrics table")
		lintFlag     = flag.Bool("lint", false, "run the static diagnostics (uninitialized use, array bounds, unused locals, unreachable code) and exit without parallelizing")
		verifyFlag   = flag.Bool("verify", false, "re-run the race-and-budget verifier over every produced solution and print a report")
		workersFlag  = flag.Int("region-workers", 0, "solve independent regions of one HTG level on this many workers (<=1 sequential; output is byte-identical either way)")
		storeCapFlag = flag.Int("store-cap", 0, "enable the region-solve store with this entry capacity (0 disables; solves are cached by content address and replayed on repeats)")
		metricsAddr  = flag.String("metrics-addr", "", "serve live telemetry (/metrics Prometheus text, /healthz, /events, /debug/pprof/) on this address, e.g. localhost:9090")
		eventsFlag   = flag.String("events", "", "stream structured telemetry events (span open/close, solver incumbents, store evictions, worker stalls) to this JSONL file")
		verbose      = flag.Bool("v", false, "log tracing spans to stderr as they complete")
	)
	flag.Parse()

	if *list {
		if *benchFlag != "" || flag.NArg() > 0 {
			fatalf("-list does not take a benchmark or file argument")
		}
		for _, b := range bench.All() {
			fmt.Printf("%-12s %s\n", b.Name, b.Description)
		}
		return
	}

	var source, name string
	switch {
	case *benchFlag != "" && flag.NArg() > 0:
		fatalf("both -bench %q and file argument %q given; pass one input", *benchFlag, flag.Arg(0))
	case *benchFlag != "":
		b := bench.ByName(*benchFlag)
		if b == nil {
			fatalf("unknown benchmark %q (use -list)", *benchFlag)
		}
		source, name = b.Source, b.Name
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		source, name = string(data), flag.Arg(0)
	case flag.NArg() > 1:
		fatalf("expected one source file, got %d arguments: %s", flag.NArg(), strings.Join(flag.Args(), " "))
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *lintFlag {
		diags, err := analysis.LintSource(source)
		if err != nil {
			fatalf("%v", err)
		}
		errors := 0
		for _, d := range diags {
			fmt.Printf("%s: %s\n", name, d)
			if d.Sev == minic.SevError {
				errors++
			}
		}
		if len(diags) == 0 {
			fmt.Printf("%s: no findings\n", name)
		}
		if errors > 0 {
			os.Exit(1)
		}
		return
	}

	opts := heteropar.Options{}
	switch {
	case strings.EqualFold(*platformFlag, "A"):
		opts.Platform = heteropar.PlatformA()
	case strings.EqualFold(*platformFlag, "B"):
		opts.Platform = heteropar.PlatformB()
	case strings.HasSuffix(*platformFlag, ".json"):
		pf, err := platform.LoadFile(*platformFlag)
		if err != nil {
			fatalf("%v", err)
		}
		opts.Platform = pf
	default:
		fatalf("unknown platform %q (want A, B or a path to a .json platform description)", *platformFlag)
	}
	switch *scenarioFlag {
	case "acc":
		opts.Scenario = heteropar.Accelerator
	case "slow":
		opts.Scenario = heteropar.SlowerCores
	default:
		fatalf("unknown scenario %q", *scenarioFlag)
	}
	switch *approachFlag {
	case "het":
		opts.Approach = heteropar.Heterogeneous
	case "hom":
		opts.Approach = heteropar.Homogeneous
	default:
		fatalf("unknown approach %q", *approachFlag)
	}

	if *traceFlag != "" || *statsFlag || *verbose || *metricsAddr != "" || *eventsFlag != "" {
		opts.Observer = heteropar.NewObserver()
	}
	tele, err := clitelemetry.Start("heteropar", *metricsAddr, *eventsFlag, opts.Observer.M())
	if err != nil {
		fatalf("%v", err)
	}
	defer tele.Close()
	opts.EventLog = tele.Events
	if *verbose {
		opts.Observer.Tracer.SetLogger(tele.Out)
	}
	opts.RegionWorkers = *workersFlag
	if err := clitelemetry.ValidateStoreCap(*storeCapFlag, "disables the store"); err != nil {
		fatalf("%v", err)
	}
	if *storeCapFlag > 0 {
		opts.Store = solstore.New(solstore.Options{
			Capacity: *storeCapFlag,
			Metrics:  opts.Observer.M(),
			Events:   tele.Events,
		})
	}

	rep, err := heteropar.Parallelize(source, opts)
	if err != nil {
		fatalf("%v", err)
	}

	if *jsonFlag {
		// The canonical machine-readable document: the same
		// serve.Result encoding the heteropard daemon returns, so the
		// two outputs are byte-identical for equal inputs.
		os.Stdout.Write(serve.ResultOf(rep, name, *scenarioFlag, *approachFlag).Encode())
	} else {
		fmt.Printf("program:    %s\n", name)
		fmt.Printf("platform:   %s\n", opts.Platform)
		fmt.Printf("scenario:   %s (main class %s)\n", opts.Scenario,
			opts.Platform.Classes[rep.MainClass].Name)
		fmt.Printf("approach:   %s\n", opts.Approach)
		fmt.Printf("tasks:      %d\n", rep.NumTasks())
		fmt.Printf("ILPs:       %d (%d vars, %d constraints, %v solve time)\n",
			rep.Result.Stats.NumILPs, rep.Result.Stats.NumVars,
			rep.Result.Stats.NumConstraints, rep.Result.Stats.SolveTime.Round(1e6))
		fmt.Printf("sequential: %.0f ns on the main core\n", rep.SequentialNs)
		fmt.Printf("parallel:   %.0f ns measured on the MPSoC simulator\n", rep.MeasuredMakespanNs)
		fmt.Printf("speedup:    %.2fx measured (%.2fx estimated, %.2fx theoretical limit)\n",
			rep.MeasuredSpeedup, rep.EstimatedSpeedup, rep.TheoreticalLimit())
	}

	if *verifyFlag {
		audited := 0
		for _, set := range rep.Result.Sets {
			audited += len(set.All())
		}
		violations := analysis.VerifyResult(rep.Result)
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "heteropar: verify: %s\n", v)
		}
		if len(violations) > 0 {
			os.Exit(1)
		}
		if !*jsonFlag { // keep -json stdout a pure document
			fmt.Printf("verified:   %d solution(s) across %d node set(s), no violations\n",
				audited, len(rep.Result.Sets))
		}
	}

	if *statsFlag {
		renderTelemetry(tele.Out, rep.SolverStatsTable(),
			resolveStoreStats(opts.Store), opts.Observer.Metrics.RenderTable())
	}
	if *traceFlag != "" {
		if err := opts.Observer.Tracer.WriteChromeFile(*traceFlag); err != nil {
			fatalf("trace: %v", err)
		}
		fmt.Printf("chrome trace written to %s (open in chrome://tracing or https://ui.perfetto.dev)\n", *traceFlag)
	}
	if *plan {
		fmt.Printf("\n--- task plan ---\n%s", rep.PlanSummary())
	}
	if *gantt {
		fmt.Printf("\n--- simulated timeline ---\n%s", rep.Gantt(96))
	}
	if *spec {
		fmt.Printf("\n--- parallel specification ---\n%s", rep.ParallelSpec())
	}
	if *annotate {
		fmt.Printf("\n--- annotated source ---\n%s", rep.AnnotatedSource())
	}
	if *emitGo != "" {
		src, err := rep.GenerateGo()
		if err != nil {
			fatalf("emit-go: %v", err)
		}
		if err := os.WriteFile(*emitGo, []byte(src), 0o644); err != nil {
			fatalf("emit-go: %v", err)
		}
		fmt.Printf("\nparallel Go implementation written to %s (run with `go run %s`)\n", *emitGo, *emitGo)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "heteropar: "+format+"\n", args...)
	os.Exit(1)
}
