package main

import (
	"fmt"
	"io"

	heteropar "repro"
	"repro/internal/solstore"
)

// renderTelemetry writes the combined -stats block — solver table,
// optional region-store summary, metrics table — through one writer in
// a fixed section order. Kept free of direct os.* references so the
// golden test pins the exact combined layout. The sinks behind the
// writer (live server, event file) are wired by
// internal/clitelemetry, shared with the other CLIs.
func renderTelemetry(w io.Writer, solverStats string, store *solstore.Stats, metrics string) {
	fmt.Fprintf(w, "\n--- solver statistics ---\n%s", solverStats)
	if store != nil {
		fmt.Fprintf(w, "\n--- region store ---\nhits %d  misses %d  dedups %d  evictions %d  entries %d  hit rate %.0f%%\n",
			store.Hits, store.Misses, store.Dedups, store.Evictions, store.Entries, 100*store.HitRate())
	}
	fmt.Fprintf(w, "\n--- metrics ---\n%s", metrics)
}

// resolveStoreStats snapshots the region store when one is configured.
func resolveStoreStats(store *heteropar.SolutionStore) *solstore.Stats {
	if store == nil {
		return nil
	}
	st := store.Stats()
	return &st
}
