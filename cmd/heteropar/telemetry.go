package main

import (
	"fmt"
	"io"
	"os"

	heteropar "repro"
	"repro/internal/obs"
	"repro/internal/solstore"
)

// telemetry bundles the CLI's observability wiring: the single shared
// writer every human-readable telemetry block goes through (so -stats
// tables and -v span lines interleave at line granularity, never
// mid-line), plus the optional live HTTP server and JSONL event file.
type telemetry struct {
	// Out is the shared human-readable telemetry writer (stderr,
	// serialized). Solver tables, metrics tables and span logging all
	// route through it; stdout stays reserved for program results.
	Out *obs.SyncWriter

	server    *obs.Server
	eventFile *os.File
}

// startTelemetry opens the optional telemetry endpoints: a live
// /metrics + /debug/pprof server on metricsAddr and a JSONL event
// stream to eventsPath (either may be empty). The returned event log is
// nil when no sink wants events.
func startTelemetry(metricsAddr, eventsPath string, reg *obs.Registry) (*telemetry, *obs.EventLog, error) {
	t := &telemetry{Out: obs.NewSyncWriter(os.Stderr)}
	var elog *obs.EventLog
	if eventsPath != "" {
		f, err := os.Create(eventsPath)
		if err != nil {
			return nil, nil, fmt.Errorf("events: %w", err)
		}
		t.eventFile = f
		elog = obs.NewEventLog(f)
	} else if metricsAddr != "" {
		// No file sink, but the server's /events endpoint still wants
		// the in-memory ring.
		elog = obs.NewEventLog(nil)
	}
	if metricsAddr != "" {
		srv, err := obs.NewServer(metricsAddr, reg, elog)
		if err != nil {
			t.Close()
			return nil, nil, err
		}
		t.server = srv
		fmt.Fprintf(t.Out, "telemetry: serving /metrics, /healthz, /events, /debug/pprof/ on http://%s\n", srv.Addr())
	}
	return t, elog, nil
}

// Close stops the server and flushes the event file.
func (t *telemetry) Close() {
	if t == nil {
		return
	}
	_ = t.server.Close()
	if t.eventFile != nil {
		_ = t.eventFile.Close()
	}
}

// renderTelemetry writes the combined -stats block — solver table,
// optional region-store summary, metrics table — through one writer in
// a fixed section order. Kept free of direct os.* references so the
// golden test pins the exact combined layout.
func renderTelemetry(w io.Writer, solverStats string, store *solstore.Stats, metrics string) {
	fmt.Fprintf(w, "\n--- solver statistics ---\n%s", solverStats)
	if store != nil {
		fmt.Fprintf(w, "\n--- region store ---\nhits %d  misses %d  dedups %d  evictions %d  entries %d  hit rate %.0f%%\n",
			store.Hits, store.Misses, store.Dedups, store.Evictions, store.Entries, 100*store.HitRate())
	}
	fmt.Fprintf(w, "\n--- metrics ---\n%s", metrics)
}

// resolveStoreStats snapshots the region store when one is configured.
func resolveStoreStats(store *heteropar.SolutionStore) *solstore.Stats {
	if store == nil {
		return nil
	}
	st := store.Stats()
	return &st
}
