package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/solstore"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current output")

// TestRenderTelemetryGolden pins the combined -stats block — solver
// table, region-store summary and metrics table through the single
// shared writer — against a golden file, so the sections keep their
// order and spacing as instrumentation grows.
func TestRenderTelemetryGolden(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("ilp.solves").Add(12)
	reg.Counter("ilp.bb_nodes").Add(340)
	reg.Gauge("ilp.gap.max").Set(0.04)
	reg.CounterVec("core.region.solves", "model", "source").With("tasks", "computed").Add(7)
	reg.CounterVec("core.region.solves", "model", "source").With("tasks", "cached").Add(5)
	h := reg.HistogramVec("core.region.solve_time", "model").With("tasks")
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond} {
		h.Observe(d)
	}

	solverStats := "" +
		"region      model   class  tasks  status    time\n" +
		"loop_1      tasks   0      4      optimal   12ms\n" +
		"loop_2      chunks  1      4      optimal   3ms\n"
	store := &solstore.Stats{Hits: 9, Misses: 3, Dedups: 1, Evictions: 0, Entries: 3}

	var sb strings.Builder
	renderTelemetry(&sb, solverStats, store, reg.RenderTable())
	got := sb.String()

	golden := filepath.Join("testdata", "telemetry.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("combined telemetry output changed; run `go test ./cmd/heteropar -run Golden -update-golden` if intentional.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRenderTelemetryNoStore keeps the store section optional.
func TestRenderTelemetryNoStore(t *testing.T) {
	var sb strings.Builder
	renderTelemetry(&sb, "table\n", nil, "metrics\n")
	out := sb.String()
	if strings.Contains(out, "region store") {
		t.Errorf("store section rendered without a store:\n%s", out)
	}
	for _, want := range []string{"--- solver statistics ---", "--- metrics ---"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing section %q:\n%s", want, out)
		}
	}
}
