package main

import (
	"os"
	"path/filepath"
	"testing"
)

// lintSource runs the linter over one synthetic module package and
// returns the findings.
func lintSource(t *testing.T, src string) []Finding {
	t.Helper()
	dir := t.TempDir()
	pkgDir := filepath.Join(dir, "internal", "fake")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pkgDir, "fake.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := Run(dir, []string{"repro/internal/fake"})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return findings
}

func rules(fs []Finding) map[string]int {
	out := map[string]int{}
	for _, f := range fs {
		out[f.Rule]++
	}
	return out
}

func TestGlobalMapWriteRule(t *testing.T) {
	findings := lintSource(t, `package fake

var registry = map[string]int{}

func Set(k string, v int)  { registry[k] = v }
func Bump(k string)        { registry[k]++ }
func Remove(k string)      { delete(registry, k) }
func Add(k string, v int)  { registry[k] += v }
`)
	if got := rules(findings)["globalmapwrite"]; got != 4 {
		t.Errorf("got %d globalmapwrite findings, want 4:\n%v", got, findings)
	}
}

func TestGlobalMapWriteIgnoresLocalsAndFields(t *testing.T) {
	findings := lintSource(t, `package fake

import "sync"

type cache struct {
	mu sync.Mutex
	m  map[string]int
}

var shared = cache{m: map[string]int{}}

func (c *cache) Set(k string, v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[k] = v
}

func Local() int {
	m := map[string]int{}
	m["x"] = 1
	delete(m, "x")
	shared.Set("y", 2)
	return m["x"]
}
`)
	if got := rules(findings)["globalmapwrite"]; got != 0 {
		t.Errorf("mutex-guarded struct fields and locals were flagged:\n%v", findings)
	}
}

func TestGlobalMapWriteWaiver(t *testing.T) {
	findings := lintSource(t, `package fake

var registry = map[string]int{}

func Init() {
	registry["seed"] = 1 //repolint:allow globalmapwrite (package init, single goroutine)
}
`)
	if got := rules(findings)["globalmapwrite"]; got != 0 {
		t.Errorf("waived write was flagged:\n%v", findings)
	}
}

// writeModule lays out a synthetic module tree for the wallclock sweep:
// pkgs maps relative directories ("internal/obs", "cmd/tool") to one Go
// source file each.
func writeModule(t *testing.T, pkgs map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for rel, src := range pkgs {
		pkgDir := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(pkgDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(pkgDir, "src.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestWallclockSweep exercises the repo-wide timenow confinement: the
// sweep flags time.Now in arbitrary module packages, exempts
// internal/obs wholesale, honors //repolint:allow waivers, and applies
// no other rule (map ranges in swept packages stay legal).
func TestWallclockSweep(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"cmd/tool": `package main

import "time"

func main() { _ = time.Now() }
`,
		"internal/obs": `package obs

import "time"

func Stamp() time.Time { return time.Now() }
`,
		"internal/report": `package report

import "time"

var T = time.Now() //repolint:allow timenow (report timestamp only)

func Keys(m map[string]int) (out []string) {
	for k := range m {
		out = append(out, k)
	}
	return out
}
`,
	})
	findings, err := RunWallclock(dir)
	if err != nil {
		t.Fatalf("RunWallclock: %v", err)
	}
	got := rules(findings)
	if got["timenow"] != 1 {
		t.Errorf("got %d timenow findings, want exactly the cmd/tool call:\n%v", got["timenow"], findings)
	}
	if got["maprange"] != 0 {
		t.Errorf("wallclock sweep applied non-timenow rules:\n%v", findings)
	}
	for _, f := range findings {
		if filepath.Base(filepath.Dir(f.Pos.Filename)) == "obs" {
			t.Errorf("internal/obs is exempt but was flagged: %v", f)
		}
	}
}

// TestWallclockConfinedPolicy pins the confined-package contract on a
// synthetic internal/serve: wall-clock reads (time.Now AND the
// wallclock rule's time.Since) are findings outside the declared clock
// file, `//repolint:allow` does not silence them, and reads inside
// clock.go are dropped without any waiver.
func TestWallclockConfinedPolicy(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		p := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("internal/serve/clock.go", `package serve

import "time"

func now() time.Time                  { return time.Now() }
func since(t time.Time) time.Duration { return time.Since(t) }
`)
	write("internal/serve/handler.go", `package serve

import "time"

func Latency(t0 time.Time) time.Duration {
	return time.Since(t0) //repolint:allow timenow wallclock (must NOT silence a confined package)
}

func Stamp() time.Time { return time.Now() }
`)
	findings, err := RunWallclock(dir)
	if err != nil {
		t.Fatalf("RunWallclock: %v", err)
	}
	got := rules(findings)
	if got["wallclock"] != 1 || got["timenow"] != 1 {
		t.Errorf("got %v findings, want one waiver-proof wallclock (time.Since) and one timenow in handler.go:\n%v", got, findings)
	}
	for _, f := range findings {
		if filepath.Base(f.Pos.Filename) == "clock.go" {
			t.Errorf("clock file read flagged despite confinement policy: %v", f)
		}
	}
}

// TestWallclockRuleAbsentFromFullLint keeps time.Since legal in the
// deterministic packages (where telemetry durations carry timenow
// waivers already): the full lint must not apply the sweep-only
// wallclock rule.
func TestWallclockRuleAbsentFromFullLint(t *testing.T) {
	findings := lintSource(t, `package fake

import "time"

func Elapsed(t0 time.Time) time.Duration { return time.Since(t0) }
`)
	if got := rules(findings); got["wallclock"] != 0 {
		t.Errorf("full lint applied the wallclock rule: %v", findings)
	}
}

// TestMapFmtRule: fmt print-family calls with map-typed arguments are
// flagged; slices, scalars and non-print fmt calls are not.
func TestMapFmtRule(t *testing.T) {
	findings := lintSource(t, `package fake

import (
	"fmt"
	"os"
)

type node struct{ id int }

func Dump(m map[*node]int, s []int) {
	fmt.Println(m)
	fmt.Printf("state: %v\n", m)
	fmt.Fprintf(os.Stderr, "%v %v\n", s, m)
	_ = fmt.Sprintf("%d", len(m))
	fmt.Println(s)
}

func Wrap(m map[string]int) error {
	return fmt.Errorf("bad config: %v", m)
}
`)
	if got := rules(findings)["mapfmt"]; got != 4 {
		t.Errorf("got %d mapfmt findings, want 4 (Println, Printf, Fprintf, Errorf):\n%v", got, findings)
	}
}

// TestMapFmtWaiver: a waived map print stays legal (e.g. string-keyed maps
// whose rendering is stable).
func TestMapFmtWaiver(t *testing.T) {
	findings := lintSource(t, `package fake

import "fmt"

func Show(m map[string]int) {
	fmt.Println(m) //repolint:allow mapfmt (string keys print sorted and stable)
}
`)
	if got := rules(findings)["mapfmt"]; got != 0 {
		t.Errorf("waived map print was flagged:\n%v", findings)
	}
}

// TestExistingRulesStillFire guards against the new assignment walk
// swallowing the established checks.
func TestExistingRulesStillFire(t *testing.T) {
	findings := lintSource(t, `package fake

import "time"

func Stamp() time.Time { return time.Now() }

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`)
	got := rules(findings)
	if got["timenow"] != 1 || got["maprange"] != 1 {
		t.Errorf("got %v, want one timenow and one maprange finding", got)
	}
}
