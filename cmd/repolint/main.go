// Command repolint is the repository's determinism lint. The parallelizer
// must be a pure function of (program, platform, configuration): equal
// inputs give byte-identical plans, costs and sweep reports. That property
// is easy to lose through three innocuous Go idioms, so this tool walks the
// deterministic packages (internal/core, internal/ilp, internal/dse,
// internal/dataflow by default) with go/ast + go/types and reports:
//
//	timenow    — calls to time.Now (wall-clock leaks into results);
//	globalrand — math/rand package-level calls, which draw from the
//	             process-global, unseeded source (rand.New(rand.NewSource(
//	             seed)) and *rand.Rand methods are fine);
//	maprange   — range over a map, whose iteration order differs per run;
//	numcpu     — runtime.NumCPU / runtime.GOMAXPROCS, which silently tie
//	             search width (and with it solver trajectories) to the
//	             host machine instead of explicit configuration.
//	mapfmt     — map values passed to the fmt print family. fmt sorts
//	             map keys, but maps keyed or valued by pointers render
//	             as addresses that differ run to run, so a %v of
//	             map[*Node]X silently breaks byte-identical reports;
//	             format maps through an explicit sorted rendering or
//	             waive sites whose key and value types print stably.
//	globalmapwrite — assignments to (or deletes from) package-level
//	             maps. Now that solves run on worker pools, an
//	             unguarded global map is a data race waiting for the
//	             right interleaving; keep mutable maps behind a struct
//	             with a mutex (as internal/solstore does) or waive
//	             sites that are provably single-goroutine.
//
// Sites that are deliberately order-insensitive or wall-clock based (solver
// deadlines, telemetry timestamps) carry an explicit waiver: a
// `//repolint:allow <rule>` comment on the offending line or the line
// directly above it.
//
// In addition to the full lint of the deterministic packages, the default
// run sweeps every other package of the module with the timenow rule
// alone, so wall-clock reads stay confined to internal/obs (the telemetry
// layer, which owns time) and explicitly waived sites. That keeps new
// time.Now calls from creeping into CLIs or analysis code unreviewed.
//
// Packages listed in wallclockConfined get a stricter, waiver-free
// policy: all wall-clock reads (time.Now, and the wallclock rule's
// time.Since / time.Until) must live in the package's declared clock
// file(s); everywhere else in the package they are findings that no
// `//repolint:allow` comment can silence. This replaces ad-hoc waiver
// scatter in packages that legitimately measure latency (the serving
// layer): the clock file is the single audited doorway, and the policy
// itself is tested in main_test.go.
//
// Exit status is 1 when any unwaived finding remains, so `make lint` gates
// CI on determinism.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// defaultPackages are the deterministic core of the tool: the ILP solver,
// the parallelization algorithm, the dataflow analysis and the
// design-space-exploration engine (whose sweeps must be byte-identical
// across runs and worker counts).
var defaultPackages = []string{
	"repro/internal/core",
	"repro/internal/dataflow",
	"repro/internal/dse",
	"repro/internal/ilp",
	"repro/internal/solstore",
}

const modulePath = "repro"

// Finding is one determinism violation.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

func main() {
	root := flag.String("root", "", "module root (default: walk up from cwd to go.mod)")
	flag.Parse()
	dir := *root
	if dir == "" {
		var err error
		dir, err = findRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			os.Exit(2)
		}
	}
	pkgs := flag.Args()
	sweep := len(pkgs) == 0
	if sweep {
		pkgs = defaultPackages
	}
	findings, err := Run(dir, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	if sweep {
		wf, err := RunWallclock(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			os.Exit(2)
		}
		findings = append(findings, wf...)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func findRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

// fullRules are the rules the deterministic-package lint applies. The
// wallclock rule (time.Since / time.Until) is deliberately absent: in
// the deterministic packages those reads feed telemetry only and carry
// timenow waivers where they matter; the stricter rule exists for the
// wallclockConfined sweep below.
var fullRules = map[string]bool{
	"timenow":        true,
	"globalrand":     true,
	"maprange":       true,
	"numcpu":         true,
	"globalmapwrite": true,
	"mapfmt":         true,
}

// Run lints the named packages rooted at dir and returns the unwaived
// findings sorted by position.
func Run(dir string, pkgs []string) ([]Finding, error) {
	l := newLinter(dir)
	var findings []Finding
	for _, path := range pkgs {
		fs, err := l.lintPackage(path, fullRules)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		findings = append(findings, fs...)
	}
	sortFindings(findings)
	return findings, nil
}

// wallclockExempt are module packages allowed to read the wall clock
// without waivers: the telemetry layer itself, whose entire purpose is
// timestamps and latency measurement.
var wallclockExempt = map[string]bool{
	"repro/internal/obs": true,
}

// wallclockConfined maps a package to the set of file basenames its
// wall-clock reads must live in. Confined packages trade waivers for a
// doorway: time.Now, time.Since and time.Until are all findings
// anywhere outside the listed clock file(s), and `//repolint:allow`
// comments do not silence them — moving a read means moving it through
// the clock file, where it is reviewed once. The serving layer measures
// request and solve latency constantly; one audited clock.go beats a
// waiver on every call site.
var wallclockConfined = map[string]map[string]bool{
	"repro/internal/serve": {"clock.go": true},
}

// RunWallclock sweeps every module package that the full determinism
// lint does not already cover. Ordinary packages get the timenow rule
// alone (time.Now stays confined to internal/obs and waived sites);
// wallclockConfined packages additionally get the wallclock rule
// (time.Since / time.Until), with findings inside their declared clock
// files dropped and waivers ignored.
func RunWallclock(dir string) ([]Finding, error) {
	pkgs, err := modulePackages(dir)
	if err != nil {
		return nil, err
	}
	full := map[string]bool{}
	for _, p := range defaultPackages {
		full[p] = true
	}
	l := newLinter(dir)
	timenowOnly := map[string]bool{"timenow": true}
	confinedRules := map[string]bool{"timenow": true, "wallclock": true}
	var findings []Finding
	for _, path := range pkgs {
		if full[path] || wallclockExempt[path] {
			continue
		}
		if clockFiles, ok := wallclockConfined[path]; ok {
			fs, err := l.lintPackageUnwaivable(path, confinedRules)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			for _, f := range fs {
				if !clockFiles[filepath.Base(f.Pos.Filename)] {
					findings = append(findings, f)
				}
			}
			continue
		}
		fs, err := l.lintPackage(path, timenowOnly)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		findings = append(findings, fs...)
	}
	sortFindings(findings)
	return findings, nil
}

// modulePackages walks the module tree and returns the import path of
// every directory holding non-test Go files, sorted.
func modulePackages(dir string) ([]string, error) {
	var pkgs []string
	err := filepath.WalkDir(dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if name := d.Name(); p != dir && (strings.HasPrefix(name, ".") || name == "testdata") {
			return fs.SkipDir
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(dir, p)
		if err != nil {
			return err
		}
		if rel == "." {
			pkgs = append(pkgs, modulePath)
		} else {
			pkgs = append(pkgs, modulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(pkgs)
	return pkgs, nil
}

func newLinter(dir string) *linter {
	l := &linter{
		fset:  token.NewFileSet(),
		root:  dir,
		cache: map[string]*checked{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)
	return l
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
}

// linter type-checks repo packages from source. It doubles as the
// types.ImporterFrom the checker uses to resolve imports: module-internal
// paths are mapped onto repo directories; everything else defers to the
// stdlib source importer.
type linter struct {
	fset  *token.FileSet
	root  string
	std   types.ImporterFrom
	cache map[string]*checked
}

// checked is one type-checked module package. Every module package is
// checked exactly once — re-checking would mint a second *types.Package
// and make identical types unassignable across import paths — so the
// parsed files and use info are kept for the lint walk.
type checked struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

func (l *linter) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

func (l *linter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path != modulePath && !strings.HasPrefix(path, modulePath+"/") {
		return l.std.ImportFrom(path, srcDir, mode)
	}
	c, err := l.check(path)
	if err != nil {
		return nil, err
	}
	return c.pkg, nil
}

func (l *linter) check(path string) (*checked, error) {
	if c, ok := l.cache[path]; ok {
		return c, nil
	}
	files, err := l.parseDir(path, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Uses:  map[*ast.Ident]types.Object{},
		Types: map[ast.Expr]types.TypeAndValue{},
	}
	cfg := types.Config{Importer: l}
	pkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	c := &checked{pkg: pkg, files: files, info: info}
	l.cache[path] = c
	return c, nil
}

// pkgDir maps an import path inside the module to its directory.
func (l *linter) pkgDir(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, modulePath), "/")
	return filepath.Join(l.root, filepath.FromSlash(rel))
}

// parseDir parses every non-test Go file of the package.
func (l *linter) parseDir(path string, mode parser.Mode) ([]*ast.File, error) {
	dir := l.pkgDir(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return files, nil
}

// lintPackage type-checks one target package and walks its files,
// honoring `//repolint:allow` waivers. A non-nil rules set restricts
// reporting to those rules (the wallclock sweep passes {timenow});
// nil applies every rule.
func (l *linter) lintPackage(path string, rules map[string]bool) ([]Finding, error) {
	return l.lint(path, rules, true)
}

// lintPackageUnwaivable is lintPackage with waivers ignored — the
// wallclockConfined policy, where the clock file is the only doorway
// and per-site waivers would defeat the confinement.
func (l *linter) lintPackageUnwaivable(path string, rules map[string]bool) ([]Finding, error) {
	return l.lint(path, rules, false)
}

func (l *linter) lint(path string, rules map[string]bool, honorWaivers bool) ([]Finding, error) {
	c, err := l.check(path)
	if err != nil {
		return nil, err
	}
	info := c.info
	var findings []Finding
	for _, f := range c.files {
		waived := waivers(l.fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			var found *Finding
			switch n := n.(type) {
			case *ast.CallExpr:
				found = l.checkCall(n, info)
				if found == nil {
					found = l.checkDelete(n, info)
				}
			case *ast.RangeStmt:
				found = l.checkRange(n, info)
			case *ast.AssignStmt:
				found = l.checkAssign(n, info)
			case *ast.IncDecStmt:
				found = l.checkMapWrite(n.X, info)
			}
			if found != nil && rules != nil && !rules[found.Rule] {
				found = nil
			}
			if found != nil && honorWaivers && (waived[found.Pos.Line][found.Rule] || waived[found.Pos.Line-1][found.Rule]) {
				found = nil
			}
			if found != nil {
				findings = append(findings, *found)
			}
			return true
		})
	}
	return findings, nil
}

// waivers collects //repolint:allow directives: line -> waived rule set.
func waivers(fset *token.FileSet, f *ast.File) map[int]map[string]bool {
	out := map[int]map[string]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "repolint:allow") {
				continue
			}
			line := fset.Position(c.Pos()).Line
			if out[line] == nil {
				out[line] = map[string]bool{}
			}
			for _, rule := range strings.Fields(strings.TrimPrefix(text, "repolint:allow")) {
				out[line][strings.TrimSuffix(rule, ",")] = true
			}
		}
	}
	return out
}

func (l *linter) checkCall(call *ast.CallExpr, info *types.Info) *Finding {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return nil // methods (e.g. *rand.Rand drawn from a seeded source) are fine
	}
	switch {
	case fn.Pkg().Path() == "time" && fn.Name() == "Now":
		return &Finding{
			Pos:  l.fset.Position(call.Pos()),
			Rule: "timenow",
			Msg:  "time.Now leaks wall-clock time into a deterministic package",
		}
	case fn.Pkg().Path() == "time" && (fn.Name() == "Since" || fn.Name() == "Until"):
		return &Finding{
			Pos:  l.fset.Position(call.Pos()),
			Rule: "wallclock",
			Msg:  fmt.Sprintf("time.%s reads the wall clock outside the package's clock file; route it through the declared clock file (see wallclockConfined)", fn.Name()),
		}
	case fn.Pkg().Path() == "math/rand" && fn.Name() != "New" && fn.Name() != "NewSource":
		return &Finding{
			Pos:  l.fset.Position(call.Pos()),
			Rule: "globalrand",
			Msg:  fmt.Sprintf("rand.%s draws from the process-global source; use rand.New(rand.NewSource(seed))", fn.Name()),
		}
	case fn.Pkg().Path() == "runtime" && (fn.Name() == "NumCPU" || fn.Name() == "GOMAXPROCS"):
		return &Finding{
			Pos:  l.fset.Position(call.Pos()),
			Rule: "numcpu",
			Msg:  fmt.Sprintf("runtime.%s makes behavior depend on the host machine; take widths from explicit configuration (e.g. ilp.Options.Workers) or waive if results stay machine-independent", fn.Name()),
		}
	case fn.Pkg().Path() == "fmt" && printFamily[fn.Name()]:
		if typ := l.mapArgType(call, info); typ != "" {
			return &Finding{
				Pos:  l.fset.Position(call.Pos()),
				Rule: "mapfmt",
				Msg:  fmt.Sprintf("fmt.%s formats a %s directly; pointer keys or values print as per-run addresses — render the map through an explicit sorted form or waive if the types print stably", fn.Name(), typ),
			}
		}
	}
	return nil
}

// printFamily is the set of fmt functions whose arguments end up rendered
// with the default formatter.
var printFamily = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Errorf": true, "Appendf": true,
}

// mapArgType returns the printed type of the first map-typed argument of a
// fmt print-family call ("" when none). Format strings and io.Writer
// receivers are never maps, so every argument can be inspected uniformly.
func (l *linter) mapArgType(call *ast.CallExpr, info *types.Info) string {
	for _, arg := range call.Args {
		tv, ok := info.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			return tv.Type.String()
		}
	}
	return ""
}

// checkAssign flags `globalMap[k] = v` (also +=, multi-assign).
func (l *linter) checkAssign(as *ast.AssignStmt, info *types.Info) *Finding {
	for _, lhs := range as.Lhs {
		if f := l.checkMapWrite(lhs, info); f != nil {
			return f
		}
	}
	return nil
}

// checkDelete flags `delete(globalMap, k)`.
func (l *linter) checkDelete(call *ast.CallExpr, info *types.Info) *Finding {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) != 2 {
		return nil
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "delete" {
		return nil
	}
	if v := l.globalMapVar(call.Args[0], info); v != nil {
		return &Finding{
			Pos:  l.fset.Position(call.Pos()),
			Rule: "globalmapwrite",
			Msg:  fmt.Sprintf("delete from package-level map %s; unguarded global maps race under the region worker pools — keep mutable maps behind a mutex-guarded struct or waive", v.Name()),
		}
	}
	return nil
}

// checkMapWrite flags an index expression over a package-level map used
// as a write target.
func (l *linter) checkMapWrite(expr ast.Expr, info *types.Info) *Finding {
	ix, ok := expr.(*ast.IndexExpr)
	if !ok {
		return nil
	}
	tv, ok := info.Types[ix.X]
	if !ok || tv.Type == nil {
		return nil
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return nil
	}
	if v := l.globalMapVar(ix.X, info); v != nil {
		return &Finding{
			Pos:  l.fset.Position(expr.Pos()),
			Rule: "globalmapwrite",
			Msg:  fmt.Sprintf("write to package-level map %s; unguarded global maps race under the region worker pools — keep mutable maps behind a mutex-guarded struct or waive", v.Name()),
		}
	}
	return nil
}

// globalMapVar resolves expr to a package-level map variable, nil
// otherwise. Struct fields and locals (including mutex-carrying cache
// structs) are fine; only bare package-scope maps are flagged.
func (l *linter) globalMapVar(expr ast.Expr, info *types.Info) *types.Var {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel // otherpkg.GlobalMap
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil // local variable
	}
	if _, isMap := v.Type().Underlying().(*types.Map); !isMap {
		return nil
	}
	return v
}

func (l *linter) checkRange(rs *ast.RangeStmt, info *types.Info) *Finding {
	tv, ok := info.Types[rs.X]
	if !ok {
		return nil
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return nil
	}
	return &Finding{
		Pos:  l.fset.Position(rs.Pos()),
		Rule: "maprange",
		Msg:  "map iteration order varies per run; sort the keys or waive if provably order-insensitive",
	}
}
