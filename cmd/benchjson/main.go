// Command benchjson runs the repository's benchmark suites and writes
// the results as a machine-readable JSON file, so the performance
// trajectory of the solver and the figure pipeline is tracked in-repo
// from one PR to the next.
//
// Two suites are collected:
//
//   - figures: the paper-reproduction benches in the root package
//     (BenchmarkFig7a/7b/8a/8b, BenchmarkTableI) on the default
//     three-benchmark subset, one iteration each — these measure the
//     end-to-end pipeline including every ILP solve.
//   - ilp: the solver microbenches in internal/ilp (root relaxation,
//     warm vs cold MILP, knapsack node throughput, cut separation,
//     parallel search), run under the normal benchtime so ns/op is
//     stable.
//   - solstore: the region-solve store microbenches (warm lookup, LRU
//     eviction pressure, singleflight, concurrent mixed traffic).
//   - dse: the sweep-point benches (cold vs warm region store, with
//     region hit-rate and dedup-count metrics).
//   - obs: the telemetry-primitive benches (histogram observe, labeled
//     Vec child lookup, snapshot and Prometheus render cost) — the
//     per-call overhead instrumented hot paths pay.
//   - deps: dependence analysis + HTG build with array-section
//     sharpening over the UTDSP suite, with edges-dropped and
//     bytes-saved counters as custom metrics.
//
// Usage:
//
//	go run ./cmd/benchjson [-o BENCH_ilp.json] [-suite figures|ilp|solstore|dse|obs|deps|all]
//	go run ./cmd/benchjson -suite ilp -check BENCH_ilp.json   # CI gate
//
// With -check, no file is written: measured ns/op must stay within
// -tolerance (default 2x) of the committed values, so CI catches
// order-of-magnitude solver regressions without flaking on machine
// noise. The output schema is documented in EXPERIMENTS.md.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// Record is one benchmark result. NsPerOp is wall time; Metrics holds
// every custom testing.B metric the bench reported (lp-iters/op,
// nodes/op, warm-hit-%, homo-x, ...) plus B/op and allocs/op.
type Record struct {
	Suite   string             `json:"suite"`
	Op      string             `json:"op"`
	Iters   int64              `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the top-level BENCH_ilp.json document.
type File struct {
	Schema     string   `json:"schema"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Benchmarks []Record `json:"benchmarks"`
}

type suite struct {
	name  string
	pkg   string
	bench string
	extra []string
}

var suites = []suite{
	{
		name:  "figures",
		pkg:   ".",
		bench: "^Benchmark(Fig7a|Fig7b|Fig8a|Fig8b|TableI)$",
		extra: []string{"-benchtime", "1x"},
	},
	{
		name:  "ilp",
		pkg:   "./internal/ilp/",
		bench: "^Benchmark",
	},
	{
		name:  "solstore",
		pkg:   "./internal/solstore/",
		bench: "^Benchmark",
	},
	{
		name:  "dse",
		pkg:   "./internal/dse/",
		bench: "^BenchmarkSweepPoint",
	},
	{
		name:  "obs",
		pkg:   "./internal/obs/",
		bench: "^Benchmark",
	},
	{
		// Dependence-analysis cost: full HTG construction with section
		// sharpening over the UTDSP suite; edges-dropped and bytes-saved
		// ride along as custom metrics.
		name:  "deps",
		pkg:   "./internal/htg/",
		bench: "^BenchmarkDeps$",
	},
	{
		// Daemon serving overhead: a warm-store 200-request mixed
		// UTDSP load run through internal/serve's loadgen; req/s and
		// latency percentiles ride along as custom metrics.
		name:  "serve",
		pkg:   "./internal/serve/",
		bench: "^BenchmarkServe",
		extra: []string{"-benchtime", "1x"},
	},
}

func main() {
	out := flag.String("o", "BENCH_ilp.json", "output file")
	only := flag.String("suite", "all", "suite to run: figures, ilp, solstore, dse, obs, deps, serve or all")
	check := flag.String("check", "", "compare measured ns/op against this committed file instead of writing; exit 1 on regression beyond -tolerance")
	tolerance := flag.Float64("tolerance", 2.0, "with -check: fail when measured ns/op exceeds the committed value by more than this factor")
	flag.Parse()

	doc := File{
		Schema:    "repro-bench/v1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, s := range suites {
		if *only != "all" && *only != s.name {
			continue
		}
		recs, err := runSuite(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: suite %s: %v\n", s.name, err)
			os.Exit(1)
		}
		doc.Benchmarks = append(doc.Benchmarks, recs...)
	}
	if *check != "" {
		if err := checkAgainst(*check, doc.Benchmarks, *tolerance); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("benchjson: %d results within %.1fx of %s\n", len(doc.Benchmarks), *tolerance, *check)
		return
	}
	buf, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d results to %s\n", len(doc.Benchmarks), *out)
}

// checkAgainst compares measured results with the committed reference:
// every measured op that also appears in the reference (same suite and
// name) must stay within factor x of the committed ns/op. New or
// removed benches are reported but never fail the gate, so the file
// only needs regenerating when timings actually move.
func checkAgainst(path string, measured []Record, factor float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var ref File
	if err := json.Unmarshal(data, &ref); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	committed := map[string]float64{}
	for _, r := range ref.Benchmarks {
		committed[r.Suite+"/"+r.Op] = r.NsPerOp
	}
	var regressions []string
	for _, r := range measured {
		want, ok := committed[r.Suite+"/"+r.Op]
		if !ok {
			fmt.Printf("benchjson: %s/%s not in %s (new bench; regenerate with make bench-json)\n", r.Suite, r.Op, path)
			continue
		}
		if want > 0 && r.NsPerOp > want*factor {
			regressions = append(regressions, fmt.Sprintf(
				"%s/%s: %.0f ns/op vs committed %.0f ns/op (%.2fx > %.1fx tolerance)",
				r.Suite, r.Op, r.NsPerOp, want, r.NsPerOp/want, factor))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("bench regression:\n  %s", strings.Join(regressions, "\n  "))
	}
	return nil
}

func runSuite(s suite) ([]Record, error) {
	args := []string{"test", "-run", "^$", "-bench", s.bench, "-benchmem"}
	args = append(args, s.extra...)
	args = append(args, s.pkg)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	var buf bytes.Buffer
	cmd.Stdout = &buf
	fmt.Printf("benchjson: go %s\n", strings.Join(args, " "))
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test: %w\n%s", err, buf.String())
	}
	return parseBench(s.name, buf.Bytes())
}

// trimProcSuffix drops the trailing -GOMAXPROCS go test appends to
// benchmark names, so records compare across machines.
func trimProcSuffix(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// parseBench reads standard `go test -bench` output lines:
//
//	BenchmarkName-8   100   12345 ns/op   67 lp-iters/op   8 B/op   2 allocs/op
func parseBench(suiteName string, out []byte) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		rec := Record{
			Suite:   suiteName,
			Op:      trimProcSuffix(fields[0]),
			Iters:   iters,
			Metrics: map[string]float64{},
		}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				rec.NsPerOp = v
			default:
				rec.Metrics[unit] = v
			}
		}
		if len(rec.Metrics) == 0 {
			rec.Metrics = nil
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("no benchmark lines in output:\n%s", out)
	}
	return recs, nil
}
