// Command heteropard serves the parallelizer as a long-running daemon:
// many clients share one process, one solver pool and one warm solution
// store. The HTTP/JSON API wraps the same pipeline as the heteropar
// CLI, and for equal inputs the daemon's response is byte-identical to
// `heteropar -json`.
//
// Usage:
//
//	heteropard [flags]                start the daemon
//	heteropard -loadgen [flags]       replay a benchmark workload against a daemon
//
// Daemon flags:
//
//	-addr host:port     listen address (default localhost:8380)
//	-workers n          solver pool size (default 4)
//	-queue n            admission queue depth; beyond it requests get 429 (default 64)
//	-timeout d          default per-request wait cap, e.g. 90s (default 2m)
//	-store-cap n        solution store capacity (0 = default sizing)
//	-region-workers n   per-solve region concurrency (0/1 = sequential)
//	-events f.jsonl     stream structured telemetry events to a JSONL file
//	-drain-timeout d    how long SIGTERM waits for in-flight solves (default 2m)
//
// API:
//
//	POST /v1/parallelize   {"bench":"mult_10"} or {"source":"...", ...}
//	GET  /v1/jobs/{id}     poll an async job
//	GET  /metrics          Prometheus text (solver + store + serve families)
//	GET  /events, /healthz, /debug/pprof/
//
// Identical concurrent requests coalesce onto one solve; repeated
// requests answer from the store without solving. SIGTERM/SIGINT stops
// admission (503), drains in-flight work and exits cleanly.
//
// Loadgen flags (with -loadgen):
//
//	-target url         daemon base URL (default http://localhost:8380)
//	-n requests         total requests (default 100)
//	-c concurrency      in-flight requests (default 8)
//	-benchmarks a,b,c   benchmarks replayed round-robin (default all ten)
//	-platform A|B       platform for every request (default daemon default)
//	-scenario acc|slow  scenario for every request
//	-approach het|hom   approach for every request
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/clitelemetry"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	var (
		addrFlag     = flag.String("addr", "localhost:8380", "listen address (host:port; port 0 picks an ephemeral port)")
		workersFlag  = flag.Int("workers", serve.DefaultWorkers, "solver pool size")
		queueFlag    = flag.Int("queue", serve.DefaultQueueDepth, "admission queue depth; requests beyond queued+running capacity get 429")
		timeoutFlag  = flag.Duration("timeout", serve.DefaultTimeout, "default per-request wait cap (queue + solve) when the request sets no timeout_ms")
		storeCapFlag = flag.Int("store-cap", 0, "solution store capacity shared by whole-job results and region solves (0 = default sizing)")
		regWorkers   = flag.Int("region-workers", 0, "per-solve region concurrency when the request sets no region_workers (0/1 = sequential)")
		eventsFlag   = flag.String("events", "", "stream structured telemetry events (job queued/coalesced/done, solver incumbents, store evictions) to this JSONL file")
		drainFlag    = flag.Duration("drain-timeout", 2*time.Minute, "how long a shutdown signal waits for in-flight solves before giving up")

		loadgen   = flag.Bool("loadgen", false, "run as a load-generation client against a daemon instead of serving")
		target    = flag.String("target", "http://localhost:8380", "loadgen: daemon base URL")
		nFlag     = flag.Int("n", 100, "loadgen: total requests")
		cFlag     = flag.Int("c", 8, "loadgen: concurrent in-flight requests")
		benchList = flag.String("benchmarks", "all", "loadgen: comma-separated bundled benchmarks replayed round-robin, or \"all\"")
		platFlag  = flag.String("platform", "", "loadgen: platform (A or B) for every request (empty = daemon default)")
		scenFlag  = flag.String("scenario", "", "loadgen: scenario (acc or slow) for every request")
		apprFlag  = flag.String("approach", "", "loadgen: approach (het or hom) for every request")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fatalf("unexpected arguments: %s", strings.Join(flag.Args(), " "))
	}

	if *loadgen {
		runLoadgen(*target, *nFlag, *cFlag, *benchList, *platFlag, *scenFlag, *apprFlag)
		return
	}

	if err := clitelemetry.ValidateStoreCap(*storeCapFlag, "selects the default sizing"); err != nil {
		fatalf("%v", err)
	}

	reg := obs.NewRegistry()
	tele, err := clitelemetry.Start("heteropard", "", *eventsFlag, reg)
	if err != nil {
		fatalf("%v", err)
	}
	defer tele.Close()

	srv, err := serve.New(serve.Config{
		Workers:        *workersFlag,
		QueueDepth:     *queueFlag,
		DefaultTimeout: *timeoutFlag,
		StoreCapacity:  *storeCapFlag,
		RegionWorkers:  *regWorkers,
		Metrics:        reg,
		Events:         tele.Events,
	})
	if err != nil {
		fatalf("%v", err)
	}

	ln, err := net.Listen("tcp", *addrFlag)
	if err != nil {
		fatalf("%v", err)
	}
	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 5 * time.Second}
	// The listening line goes to stdout so scripts can scrape the bound
	// address (port 0 resolves to an ephemeral port).
	fmt.Printf("heteropard: listening on http://%s (%d workers, queue %d)\n",
		ln.Addr(), *workersFlag, *queueFlag)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		fatalf("%v", err)
	case s := <-sig:
		fmt.Fprintf(tele.Out, "heteropard: %v: draining (up to %v)\n", s, *drainFlag)
	}

	// Graceful shutdown: stop accepting connections, then drain the
	// solver pool so every admitted job still answers its waiters.
	ctx, cancel := context.WithTimeout(context.Background(), *drainFlag)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(tele.Out, "heteropard: http shutdown: %v\n", err)
	}
	if err := srv.Drain(ctx); err != nil {
		fatalf("%v", err)
	}
	st := srv.Store().Stats()
	fmt.Fprintf(tele.Out, "heteropard: drained cleanly (store: %d hits, %d misses, %d entries)\n",
		st.Hits, st.Misses, st.Entries)
}

// runLoadgen replays the benchmark workload against a running daemon
// and prints the throughput/latency report.
func runLoadgen(target string, n, c int, benchCSV, platform, scenario, approach string) {
	var names []string
	if benchCSV == "all" {
		for _, b := range bench.All() {
			names = append(names, b.Name)
		}
	} else {
		for _, name := range strings.Split(benchCSV, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := serve.RunLoad(ctx, serve.LoadOptions{
		BaseURL:     target,
		Benchmarks:  names,
		Concurrency: c,
		Requests:    n,
		Platform:    platform,
		Scenario:    scenario,
		Approach:    approach,
	})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Print(rep.Render())
	if rep.Errors > 0 || rep.StatusCounts[http.StatusOK] != rep.Requests {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "heteropard: "+format+"\n", args...)
	os.Exit(1)
}
