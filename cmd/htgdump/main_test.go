package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestSectionsReportGolden pins the -sections output for a benchmark with
// real dropped edges. The report must be deterministic, so the golden is a
// byte-exact comparison; regenerate with `go test ./cmd/htgdump -update`.
func TestSectionsReportGolden(t *testing.T) {
	b := bench.ByName("bound_value")
	if b == nil {
		t.Fatal("bound_value benchmark missing")
	}
	got, err := dump(b.Source, true)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "sections_bound_value.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("-sections output drifted from golden (rerun with -update if intended)\ngot:\n%s\nwant:\n%s", got, want)
	}
	// Determinism: a second build must render byte-identically.
	again, err := dump(b.Source, true)
	if err != nil {
		t.Fatal(err)
	}
	if again != got {
		t.Errorf("-sections output differs between identical runs")
	}
}
