// Command htgdump prints the Augmented Hierarchical Task Graph of a mini-C
// program in Graphviz DOT format (pipe into `dot -Tsvg`), or, with
// -sections, the array-section dependence report: every sibling dependence
// with its per-array sections and communication volume before/after
// section sharpening, plus the dependences the section analysis dropped.
//
// Usage:
//
//	htgdump file.c
//	htgdump -bench compress
//	htgdump -sections -bench bound_value
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/htg"
	"repro/internal/interp"
	"repro/internal/minic"
)

// dump compiles and profiles source, builds the HTG and renders it: the
// section report when sections is set, Graphviz DOT otherwise. Both
// renderings are deterministic for equal inputs.
func dump(source string, sections bool) (string, error) {
	prog, err := minic.Compile(source)
	if err != nil {
		return "", err
	}
	in := interp.New(prog)
	prof, err := in.Run()
	if err != nil {
		return "", err
	}
	g, err := htg.Build(prog, prof, htg.Config{})
	if err != nil {
		return "", err
	}
	if sections {
		return g.SectionReport(), nil
	}
	return g.DOT(), nil
}

func main() {
	benchFlag := flag.String("bench", "", "use a bundled benchmark instead of a file")
	sectionsFlag := flag.Bool("sections", false, "print the array-section dependence report instead of DOT")
	flag.Parse()

	var source string
	switch {
	case *benchFlag != "":
		b := bench.ByName(*benchFlag)
		if b == nil {
			fmt.Fprintf(os.Stderr, "htgdump: unknown benchmark %q\n", *benchFlag)
			os.Exit(1)
		}
		source = b.Source
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "htgdump: %v\n", err)
			os.Exit(1)
		}
		source = string(data)
	default:
		flag.Usage()
		os.Exit(2)
	}

	out, err := dump(source, *sectionsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "htgdump: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
