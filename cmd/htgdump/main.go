// Command htgdump prints the Augmented Hierarchical Task Graph of a mini-C
// program in Graphviz DOT format (pipe into `dot -Tsvg`).
//
// Usage:
//
//	htgdump file.c
//	htgdump -bench compress
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/htg"
	"repro/internal/interp"
	"repro/internal/minic"
)

func main() {
	benchFlag := flag.String("bench", "", "use a bundled benchmark instead of a file")
	flag.Parse()

	var source string
	switch {
	case *benchFlag != "":
		b := bench.ByName(*benchFlag)
		if b == nil {
			fmt.Fprintf(os.Stderr, "htgdump: unknown benchmark %q\n", *benchFlag)
			os.Exit(1)
		}
		source = b.Source
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "htgdump: %v\n", err)
			os.Exit(1)
		}
		source = string(data)
	default:
		flag.Usage()
		os.Exit(2)
	}

	prog, err := minic.Compile(source)
	if err != nil {
		fmt.Fprintf(os.Stderr, "htgdump: %v\n", err)
		os.Exit(1)
	}
	in := interp.New(prog)
	prof, err := in.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "htgdump: %v\n", err)
		os.Exit(1)
	}
	g, err := htg.Build(prog, prof, htg.Config{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "htgdump: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(g.DOT())
}
