// Command paperrepro regenerates the paper's evaluation artifacts:
// Figures 7(a), 7(b), 8(a), 8(b) and Table I.
//
// Usage:
//
//	paperrepro              # everything (several minutes)
//	paperrepro -fig 7a      # one figure
//	paperrepro -table 1     # Table I only
//	paperrepro -bench mult_10,fir_256   # restrict the benchmark set
//	paperrepro -out results.md          # additionally write a markdown report
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	var (
		figFlag   = flag.String("fig", "", "figure to regenerate: 7a, 7b, 8a, 8b (empty = all)")
		tableFlag = flag.String("table", "", "table to regenerate: 1 (empty = all when no -fig given)")
		benchCSV  = flag.String("bench", "", "comma-separated benchmark subset (empty = all ten)")
		outFlag   = flag.String("out", "", "also write a markdown report to this file")
	)
	flag.Parse()

	if *figFlag != "" {
		valid := false
		for _, id := range experiments.FigureIDs() {
			if *figFlag == id {
				valid = true
				break
			}
		}
		if !valid {
			fmt.Fprintf(os.Stderr, "paperrepro: unknown figure %q (want one of %s)\n",
				*figFlag, strings.Join(experiments.FigureIDs(), ", "))
			os.Exit(1)
		}
	}
	if *tableFlag != "" && *tableFlag != "1" {
		fmt.Fprintf(os.Stderr, "paperrepro: unknown table %q (only table 1 exists)\n", *tableFlag)
		os.Exit(1)
	}

	var names []string
	if *benchCSV != "" {
		for _, n := range strings.Split(*benchCSV, ",") {
			n = strings.TrimSpace(n)
			if bench.ByName(n) == nil {
				fmt.Fprintf(os.Stderr, "paperrepro: unknown benchmark %q\n", n)
				os.Exit(1)
			}
			names = append(names, n)
		}
	}

	cfg := core.Config{}
	var md strings.Builder
	md.WriteString("# Reproduction results\n\n")
	fmt.Fprintf(&md, "Generated %s.\n\n", time.Now().Format(time.RFC1123)) //repolint:allow timenow (report timestamp only)

	runFig := func(id string) {
		start := time.Now() //repolint:allow timenow (progress reporting only)
		fig, err := experiments.RunFigure(id, names, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperrepro: figure %s: %v\n", id, err)
			os.Exit(1)
		}
		out := fig.Render()
		fmt.Println(out)
		fmt.Printf("(figure %s regenerated in %v)\n\n", id, time.Since(start).Round(time.Second))
		fmt.Fprintf(&md, "## Figure %s\n\n```\n%s```\n\n", id, out)
	}
	runTable := func() {
		start := time.Now() //repolint:allow timenow (progress reporting only)
		tbl, err := experiments.RunTableI(names, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperrepro: table I: %v\n", err)
			os.Exit(1)
		}
		out := tbl.Render()
		fmt.Println(out)
		fmt.Printf("(table I regenerated in %v)\n\n", time.Since(start).Round(time.Second))
		fmt.Fprintf(&md, "## Table I\n\n```\n%s```\n\n", out)
		solver := tbl.RenderSolverStats()
		fmt.Printf("Solver telemetry (per benchmark and approach):\n\n%s\n", solver)
		fmt.Fprintf(&md, "## Solver telemetry\n\n%s\n", solver)
	}

	switch {
	case *figFlag != "":
		runFig(*figFlag)
		if *tableFlag == "1" {
			runTable()
		}
	case *tableFlag == "1":
		runTable()
	default:
		for _, id := range experiments.FigureIDs() {
			runFig(id)
		}
		runTable()
	}

	if *outFlag != "" {
		if err := os.WriteFile(*outFlag, []byte(md.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "paperrepro: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *outFlag)
	}
}
