// Command heteropardse explores the heterogeneous-platform design
// space: it generates candidate MPSoC configurations (clock mixes,
// per-class core counts, main-core scenarios), runs the full
// parallelize→simulate pipeline for every (platform, benchmark) pair on
// a worker pool, and reports the Pareto-optimal configurations under
// (speedup, cores, energy) next to a genetic-algorithm mapping baseline.
//
// Usage:
//
//	heteropardse [flags]
//
// Flags:
//
//	-space default|small  platform space to sweep (default default)
//	-points n          sample size drawn from the space (default 200)
//	-benchmarks a,b,c  bundled benchmarks to sweep (default mult_10,fir_256,iir_4; "all" for every one)
//	-seed n            sweep seed; equal seeds give byte-identical output (default 1)
//	-cache dir         persist evaluation outcomes to dir (warm runs hit instead of re-solving)
//	-out csv|md|json   report format (default md)
//	-o file            write the report to file instead of stdout
//	-workers n         worker-pool size (default NumCPU)
//	-ilp-nodes n       per-ILP branch-and-bound node budget (default 60; ~20 for big sweeps)
//	-ilp-workers n     concurrent node relaxations per ILP search round (default 1 = serial)
//	-max-tasks n       per-region task-bound cap (default 4)
//	-region-workers n  per-evaluation region-solve workers (default 1 = sequential)
//	-store-cap n       region-solve store capacity (0 = default sizing)
//	-stats             print cache and solver statistics to stderr
//	-trace out.json    write a Chrome trace_event file of the sweep
//	-metrics-addr a    serve live /metrics, /healthz and /debug/pprof/ on a
//	-events f.jsonl    stream structured telemetry events to a JSONL file
//	-v                 log spans to stderr as they complete
//
// Telemetry is strictly out-of-band: the sweep report is byte-identical
// with -metrics-addr/-events on or off. All human-readable telemetry
// shares one serialized stderr writer.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/clitelemetry"
	"repro/internal/dse"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/solstore"
)

func main() {
	var (
		spaceFlag  = flag.String("space", "default", "platform space: default (6 clocks, ≤3 classes, ≤8 cores) or small (quick smoke sweep)")
		pointsFlag = flag.Int("points", 200, "number of design points sampled from the space (0 = all)")
		benchFlag  = flag.String("benchmarks", "mult_10,fir_256,iir_4", "comma-separated bundled benchmarks, or \"all\"")
		seedFlag   = flag.Int64("seed", 1, "sweep seed (sampling and GA); equal seeds give byte-identical output")
		cacheFlag  = flag.String("cache", "", "cache directory for evaluation outcomes (empty = in-memory only)")
		outFlag    = flag.String("out", "md", "report format: csv, md or json")
		oFlag      = flag.String("o", "", "write the report to this file instead of stdout")
		workers    = flag.Int("workers", 0, "worker-pool size (0 = NumCPU)")
		ilpNodes   = flag.Int("ilp-nodes", 0, "per-ILP branch-and-bound node budget (0 = sweep default 60)")
		ilpWorkers = flag.Int("ilp-workers", 0, "concurrent node relaxations per ILP search round (0/1 = serial; deterministic per width)")
		maxTasks   = flag.Int("max-tasks", 0, "per-region task-bound cap (0 = sweep default 4; raise for better plans on big platforms, at steep solve cost)")
		regWorkers = flag.Int("region-workers", 0, "per-evaluation region-solve workers (0/1 = sequential; output is byte-identical per width)")
		storeCap   = flag.Int("store-cap", 0, "region-solve store capacity shared across all sweep points (0 = default sizing)")
		statsFlag  = flag.Bool("stats", false, "print cache and solver statistics to stderr")
		traceFlag  = flag.String("trace", "", "write a Chrome trace_event JSON file of the sweep")
		metricsAdr = flag.String("metrics-addr", "", "serve live telemetry (/metrics Prometheus text, /healthz, /events, /debug/pprof/) on this address, e.g. localhost:9090")
		eventsFlag = flag.String("events", "", "stream structured telemetry events (span open/close, solver incumbents, store evictions, worker stalls) to this JSONL file")
		verbose    = flag.Bool("v", false, "log tracing spans to stderr as they complete")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fatalf("unexpected arguments: %s", strings.Join(flag.Args(), " "))
	}
	if !dse.ValidFormat(*outFlag) {
		fatalf("unknown output format %q (want csv, md or json)", *outFlag)
	}
	if *pointsFlag < 0 {
		fatalf("-points must be >= 0 (0 sweeps the whole space)")
	}

	var spec dse.SpaceSpec
	switch *spaceFlag {
	case "default":
		spec = dse.DefaultSpace()
	case "small":
		spec = dse.SpaceSpec{
			ClocksMHz:        []float64{100, 250, 500},
			MaxClasses:       2,
			MaxCoresPerClass: 2,
			MinTotalCores:    2,
			MaxTotalCores:    4,
		}
	default:
		fatalf("unknown space %q (want default or small)", *spaceFlag)
	}
	points := spec.Generate(*pointsFlag, *seedFlag)

	var benches []*bench.Benchmark
	if *benchFlag == "all" {
		benches = bench.All()
	} else {
		for _, name := range strings.Split(*benchFlag, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			b := bench.ByName(name)
			if b == nil {
				fatalf("unknown benchmark %q (bundled: %s)", name, strings.Join(benchNames(), ", "))
			}
			benches = append(benches, b)
		}
	}
	if len(benches) == 0 {
		fatalf("no benchmarks selected")
	}

	// All human-readable telemetry (progress lines, -stats tables, -v
	// span lines) shares one serialized stderr writer so concurrent
	// producers interleave at line granularity. Stdout carries only the
	// report. The -metrics-addr/-events sinks are the shared
	// clitelemetry wiring.
	observer := &obs.Observer{Metrics: obs.NewRegistry()}
	tele, err := clitelemetry.Start("heteropardse", *metricsAdr, *eventsFlag, observer.Metrics)
	if err != nil {
		fatalf("%v", err)
	}
	defer tele.Close()
	telew := tele.Out
	observer.Events = tele.Events
	if *traceFlag != "" || *verbose || *eventsFlag != "" {
		observer.Tracer = obs.NewTracer()
		if *verbose {
			observer.Tracer.SetLogger(telew)
		}
	}
	observer.Tracer.SetEvents(observer.Events)

	var workloads []*dse.Workload
	prepStart := time.Now() //repolint:allow timenow (progress reporting only)
	for _, b := range benches {
		p, err := experiments.Prepare(b)
		if err != nil {
			fatalf("%v", err)
		}
		workloads = append(workloads, dse.PrepareWorkload(p))
	}
	fmt.Fprintf(telew, "heteropardse: sweeping %d points x %d benchmarks (%d evaluations, seed %d)\n",
		len(points), len(workloads), len(points)*len(workloads), *seedFlag)

	cfg := dse.SweepConfig()
	if *ilpNodes > 0 {
		cfg.MaxILPNodes = *ilpNodes
	}
	if *maxTasks > 0 {
		cfg.MaxTasksPerRegion = *maxTasks
	}
	if *ilpWorkers > 0 {
		cfg.ILPWorkers = *ilpWorkers
	}
	if *regWorkers > 0 {
		cfg.RegionWorkers = *regWorkers
	}
	// The whole-solution cache and the region-solve store share one
	// bounded arena; the engine threads it through every evaluation so
	// neighboring points reuse region subproblems.
	if err := clitelemetry.ValidateStoreCap(*storeCap, "selects the default sizing"); err != nil {
		fatalf("%v", err)
	}
	var store *solstore.Store
	if *storeCap > 0 {
		store = solstore.New(solstore.Options{Capacity: *storeCap, Metrics: observer.M(), Events: observer.E()})
	}
	eng := &dse.Engine{
		Workers: *workers,
		Config:  cfg,
		Seed:    *seedFlag,
		Cache:   dse.NewCacheOn(store, *cacheFlag, observer.M()),
		Obs:     observer,
	}

	// Ctrl-C cancels the sweep at the next job boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sweepStart := time.Now() //repolint:allow timenow (progress reporting only)
	res, err := eng.Run(ctx, points, workloads)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(telew, "heteropardse: prepared in %v, swept in %v, cache %d hits / %d misses (%.0f%% hit rate)\n",
		sweepStart.Sub(prepStart).Round(time.Millisecond),
		time.Since(sweepStart).Round(time.Millisecond), //repolint:allow timenow
		res.CacheHits, res.CacheMisses, 100*res.HitRate())
	fmt.Fprintf(telew, "heteropardse: region store %d hits / %d misses / %d dedups (%.0f%% hit rate)\n",
		res.RegionHits, res.RegionMisses, res.RegionDedups, 100*res.RegionHitRate())

	report, err := res.Render(*outFlag)
	if err != nil {
		fatalf("%v", err)
	}
	if *oFlag != "" {
		if err := os.WriteFile(*oFlag, []byte(report), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(telew, "heteropardse: report written to %s\n", *oFlag)
	} else {
		fmt.Print(report)
	}

	if *statsFlag {
		fmt.Fprintf(telew, "\n--- metrics ---\n%s", observer.M().RenderTable())
		d := observer.M().Histogram("dse.point.duration")
		if d.Count() > 0 {
			fmt.Fprintf(telew, "point eval: min=%v mean=%v max=%v over %d cold evaluations\n",
				d.Min().Round(time.Microsecond), d.Mean().Round(time.Microsecond),
				d.Max().Round(time.Microsecond), d.Count())
		}
	}
	if *traceFlag != "" {
		if err := observer.Tracer.WriteChromeFile(*traceFlag); err != nil {
			fatalf("trace: %v", err)
		}
		fmt.Fprintf(telew, "heteropardse: chrome trace written to %s\n", *traceFlag)
	}
}

func benchNames() []string {
	var names []string
	for _, b := range bench.All() {
		names = append(names, b.Name)
	}
	return names
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "heteropardse: "+format+"\n", args...)
	os.Exit(1)
}
